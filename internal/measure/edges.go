package measure

import (
	"fmt"
	"math"

	"vstat/internal/spice"
)

// SlewTime measures the 10%–90% transition time of the first edge of the
// given direction after tAfter on node v.
func SlewTime(res *spice.TranResult, node int, vdd float64, rising bool, tAfter float64) (float64, error) {
	v := res.V(node)
	lo, hi := 0.1*vdd, 0.9*vdd
	var t1, t2 float64
	var err error
	if rising {
		t1, err = CrossTime(res.Time, v, lo, true, tAfter)
		if err != nil {
			return 0, fmt.Errorf("slew 10%%: %w", err)
		}
		t2, err = CrossTime(res.Time, v, hi, true, t1)
	} else {
		t1, err = CrossTime(res.Time, v, hi, false, tAfter)
		if err != nil {
			return 0, fmt.Errorf("slew 90%%: %w", err)
		}
		t2, err = CrossTime(res.Time, v, lo, false, t1)
	}
	if err != nil {
		return 0, fmt.Errorf("slew end: %w", err)
	}
	return t2 - t1, nil
}

// SupplyCharge integrates the charge delivered by the supply source over
// [t0, t1] (trapezoidal rule on the branch current). The sign convention
// makes delivered charge positive.
func SupplyCharge(res *spice.TranResult, vddSrc int, t0, t1 float64) float64 {
	i := res.SourceI(vddSrc)
	q := 0.0
	for k := 1; k < len(res.Time); k++ {
		ta, tb := res.Time[k-1], res.Time[k]
		if tb <= t0 || ta >= t1 {
			continue
		}
		// Clip the segment to the window.
		a, b := math.Max(ta, t0), math.Min(tb, t1)
		// Interpolate currents at the clipped ends.
		ia := interpAt(res.Time, i, a)
		ib := interpAt(res.Time, i, b)
		q += -0.5 * (ia + ib) * (b - a)
	}
	return q
}

// SwitchingEnergy returns the energy drawn from the supply over a window,
// E = Vdd · Q_delivered — the per-transition dynamic energy when the window
// spans exactly one output transition.
func SwitchingEnergy(res *spice.TranResult, vddSrc int, vdd, t0, t1 float64) float64 {
	return vdd * SupplyCharge(res, vddSrc, t0, t1)
}

func interpAt(t, v []float64, x float64) float64 {
	n := len(t)
	if x <= t[0] {
		return v[0]
	}
	if x >= t[n-1] {
		return v[n-1]
	}
	h := t[1] - t[0]
	k := int((x - t[0]) / h)
	if k >= n-1 {
		k = n - 2
	}
	f := (x - t[k]) / (t[k+1] - t[k])
	return v[k] + f*(v[k+1]-v[k])
}
