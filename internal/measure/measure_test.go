package measure

import (
	"math"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/device"
	"vstat/internal/spice"
	"vstat/internal/vsmodel"
)

func nominalVS(k device.Kind, w, l float64) device.Device {
	p := vsmodel.Card(k, w).WithGeometry(w, l)
	return &p
}

func TestCrossTime(t *testing.T) {
	tm := []float64{0, 1, 2, 3}
	v := []float64{0, 1, 0, 1}
	x, err := CrossTime(tm, v, 0.5, true, 0)
	if err != nil || math.Abs(x-0.5) > 1e-12 {
		t.Fatalf("rising cross %g %v", x, err)
	}
	x, err = CrossTime(tm, v, 0.5, false, 0)
	if err != nil || math.Abs(x-1.5) > 1e-12 {
		t.Fatalf("falling cross %g %v", x, err)
	}
	x, err = CrossTime(tm, v, 0.5, true, 1.6)
	if err != nil || math.Abs(x-2.5) > 1e-12 {
		t.Fatalf("cross after %g %v", x, err)
	}
	if _, err := CrossTime(tm, v, 2, true, 0); err != ErrNoCrossing {
		t.Fatal("expected ErrNoCrossing")
	}
}

func TestPairDelayOnInverter(t *testing.T) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	b := circuits.InverterFO(3, 0.9, sz, nominalVS)
	res, err := b.Ckt.Transient(spice.TranOpts{Stop: circuits.PulsePeriod, Step: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	d, err := PairDelay(res, b.In, b.Out, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 50e-12 {
		t.Fatalf("pair delay %g implausible", d)
	}
	dHL, err := PropDelay(res, b.In, b.Out, 0.9, true, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dHL <= 0 {
		t.Fatalf("HL delay %g", dHL)
	}
}

func TestLeakageOfInverter(t *testing.T) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	b := circuits.InverterFO(3, 0.9, sz, nominalVS)
	// Static input low.
	b.Ckt.SetVSource(b.VinSrc, spice.DC(0))
	op, err := b.Ckt.OP()
	if err != nil {
		t.Fatal(err)
	}
	leak := Leakage(op, b.VddSrc)
	// 8 transistors with tens of nA/µm off-current: nA to sub-µA total.
	if leak < 1e-10 || leak > 5e-6 {
		t.Fatalf("leakage %g A implausible", leak)
	}
}

func TestSNMIdealizedCurves(t *testing.T) {
	// Two shifted step-like VTCs with a known gap: ideal inverters with
	// threshold at 0.3 and 0.6 and full swing 0..1. The largest embedded
	// square side is analytically 0.3 (limited by the threshold spacing).
	mk := func(vm float64) circuits.ButterflyCurve {
		var in, out []float64
		for v := 0.0; v <= 1.0001; v += 0.005 {
			in = append(in, v)
			o := 1.0
			// steep but finite slope around vm
			switch {
			case v > vm+0.005:
				o = 0
			case v > vm-0.005:
				o = (vm + 0.005 - v) / 0.01
			}
			out = append(out, o)
		}
		return circuits.ButterflyCurve{In: in, Out: out}
	}
	left := mk(0.3)
	right := mk(0.6) // forced-qb curve: q = g(qb)
	res, err := SNM(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SNM-0.3) > 0.02 {
		t.Fatalf("SNM %g want ≈0.3 (upper %g lower %g)", res.SNM, res.Upper, res.Lower)
	}
}

func TestSNMSymmetricCell(t *testing.T) {
	cell := circuits.NewSRAMCell(0.9, circuits.DefaultSRAMSizing(), nominalVS)
	l, r, err := cell.Butterfly(false, 81)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SNM(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// Hold SNM of a healthy 40-nm cell: a few hundred mV.
	if res.SNM < 0.15 || res.SNM > 0.45 {
		t.Fatalf("hold SNM %g V implausible", res.SNM)
	}
	// Nominal cell is symmetric: lobes nearly equal.
	if math.Abs(res.Upper-res.Lower) > 0.03 {
		t.Fatalf("nominal lobes asymmetric: %g vs %g", res.Upper, res.Lower)
	}
	// Read SNM must be smaller than hold SNM.
	lr, rr, err := cell.Butterfly(true, 81)
	if err != nil {
		t.Fatal(err)
	}
	read, err := SNM(lr, rr)
	if err != nil {
		t.Fatal(err)
	}
	if read.SNM >= res.SNM {
		t.Fatalf("read SNM %g not below hold SNM %g", read.SNM, res.SNM)
	}
	if read.SNM < 0.05 {
		t.Fatalf("read SNM %g collapsed", read.SNM)
	}
}

func TestSetupTimeNominal(t *testing.T) {
	ff := circuits.NewDFF(0.9, circuits.DefaultDFFSizing(), nominalVS)
	o := DefaultSetupOpts()
	o.Tol = 1e-12 // coarse for test speed
	ts, err := SetupTime(ff, o)
	if err != nil {
		t.Fatal(err)
	}
	// Positive, tens of ps at most for this register.
	if ts <= 0 || ts > 120e-12 {
		t.Fatalf("setup time %g implausible", ts)
	}
}

func TestHoldTimeNominal(t *testing.T) {
	ff := circuits.NewDFF(0.9, circuits.DefaultDFFSizing(), nominalVS)
	o := DefaultSetupOpts()
	o.Tol = 1e-12
	th, err := HoldTime(ff, o)
	if err != nil {
		t.Fatal(err)
	}
	// Hold time can be negative (data may fall before the edge); it must be
	// well below the setup-side window.
	if th > 60e-12 || th < -o.MaxOffset {
		t.Fatalf("hold time %g implausible", th)
	}
}

func TestInterpolatorMonotonicityGuards(t *testing.T) {
	if _, err := newInterp([]float64{0, 1, 0.5}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for non-monotone abscissa")
	}
	if _, err := newInterp([]float64{0}, []float64{1}); err == nil {
		t.Fatal("expected error for single point")
	}
	// Descending input is normalized.
	p, err := newInterp([]float64{1, 0}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.at(0.25); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("interp %g", got)
	}
	if p.at(-1) != 20 || p.at(2) != 10 {
		t.Fatal("clamping")
	}
}
