package measure

import (
	"errors"
	"fmt"

	"vstat/internal/circuits"
	"vstat/internal/spice"
)

// ErrNoPassRegion is returned when the flip-flop fails even at the largest
// tested offset (broken register).
var ErrNoPassRegion = errors.New("measure: no passing data-to-clock offset")

// SetupOpts configures the setup-time search.
type SetupOpts struct {
	ClkEdge   float64 // rising clock edge time, s
	MaxOffset float64 // largest data-to-clock offset tried, s
	Tol       float64 // bisection resolution, s
	Step      float64 // transient step, s
	Settle    float64 // time after the edge at which Q is checked, s

	// Res, when non-nil, is a reusable transient result refilled by every
	// bisection trial (the pooled Monte Carlo path); nil keeps the classic
	// allocate-per-trial behavior.
	Res *spice.TranResult
	// Fast selects the carried-Jacobian transient path for the trials.
	Fast bool
}

// DefaultSetupOpts returns a search window suited to the 40-nm register.
func DefaultSetupOpts() SetupOpts {
	return SetupOpts{
		ClkEdge:   300e-12,
		MaxOffset: 150e-12,
		Tol:       1e-12,
		Step:      2e-12,
		Settle:    300e-12,
	}
}

// SetupTime finds the minimum time by which a 0→1 data transition must
// precede the rising clock edge for the register to capture the 1 (checked
// at ClkEdge+Settle). As in the paper, this needs a full transient per
// probe, which is what makes register characterization ~20× more expensive
// than a combinational cell and motivates the ultra-compact VS model.
func SetupTime(ff *circuits.DFF, o SetupOpts) (float64, error) {
	passes := func(offset float64) (bool, error) {
		return setupTrialPasses(ff, o, offset)
	}
	// The largest offset must pass and a zero/negative margin must fail.
	hiPass, err := passes(o.MaxOffset)
	if err != nil {
		return 0, err
	}
	if !hiPass {
		return 0, ErrNoPassRegion
	}
	lo, hi := -o.MaxOffset/4, o.MaxOffset
	loPass, err := passes(lo)
	if err != nil {
		return 0, err
	}
	if loPass {
		// Captures even with data after the edge: effectively no setup
		// constraint in the window; report the lower bound.
		return lo, nil
	}
	for hi-lo > o.Tol {
		mid := 0.5 * (lo + hi)
		ok, err := passes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// setupTrialPasses runs one capture trial with the data edge at
// ClkEdge−offset and reports whether Q latched high.
func setupTrialPasses(ff *circuits.DFF, o SetupOpts, offset float64) (bool, error) {
	vdd := ff.Vdd
	edge := circuits.EdgeTime
	tData := o.ClkEdge - offset

	// Data: low, rising at tData, staying high.
	ff.Ckt.SetVSource(ff.DSrc, spice.PWL{
		T: []float64{0, tData, tData + edge},
		V: []float64{0, 0, vdd},
	})
	// Clock: low long enough for the master to settle at D=0, one rising
	// edge at ClkEdge, held high through the check.
	ff.Ckt.SetVSource(ff.ClkSrc, spice.PWL{
		T: []float64{0, o.ClkEdge, o.ClkEdge + edge},
		V: []float64{0, 0, vdd},
	})

	stop := o.ClkEdge + o.Settle
	res, err := o.runTrial(ff, stop)
	if err != nil {
		return false, fmt.Errorf("setup trial: %w", err)
	}
	q := res.At(ff.Q, stop)
	// NaN compares false and would silently read as "capture failed",
	// steering the bisection instead of surfacing the broken trial.
	if !finite(q) {
		return false, fmt.Errorf("setup trial Q at t=%g: %w", stop, ErrNonFinite)
	}
	return q > vdd/2, nil
}

// runTrial runs one capture transient, into o.Res when pooling is active.
func (o SetupOpts) runTrial(ff *circuits.DFF, stop float64) (*spice.TranResult, error) {
	opts := spice.TranOpts{
		Stop: stop, Step: o.Step, UIC: true, IC: ff.ICHoldingZero(), Fast: o.Fast,
	}
	if o.Res != nil {
		if err := ff.Ckt.TransientInto(opts, o.Res); err != nil {
			return nil, err
		}
		return o.Res, nil
	}
	return ff.Ckt.Transient(opts)
}

// HoldTime finds the minimum time the data must remain stable *after* the
// rising clock edge: data goes high well before the edge, then falls at
// ClkEdge+offset; the register must still capture the 1. Returned is the
// smallest passing offset (can be negative when the data may fall before
// the edge).
func HoldTime(ff *circuits.DFF, o SetupOpts) (float64, error) {
	passes := func(offset float64) (bool, error) {
		return holdTrialPasses(ff, o, offset)
	}
	hiPass, err := passes(o.MaxOffset)
	if err != nil {
		return 0, err
	}
	if !hiPass {
		return 0, ErrNoPassRegion
	}
	lo, hi := -o.MaxOffset, o.MaxOffset
	loPass, err := passes(lo)
	if err != nil {
		return 0, err
	}
	if loPass {
		return lo, nil
	}
	for hi-lo > o.Tol {
		mid := 0.5 * (lo + hi)
		ok, err := passes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

func holdTrialPasses(ff *circuits.DFF, o SetupOpts, offset float64) (bool, error) {
	vdd := ff.Vdd
	edge := circuits.EdgeTime
	tFall := o.ClkEdge + offset

	// Data: high early (ample setup), falling at tFall.
	ff.Ckt.SetVSource(ff.DSrc, spice.PWL{
		T: []float64{0, 50e-12, 50e-12 + edge, tFall, tFall + edge},
		V: []float64{0, 0, vdd, vdd, 0},
	})
	ff.Ckt.SetVSource(ff.ClkSrc, spice.PWL{
		T: []float64{0, o.ClkEdge, o.ClkEdge + edge},
		V: []float64{0, 0, vdd},
	})
	stop := o.ClkEdge + o.Settle
	res, err := o.runTrial(ff, stop)
	if err != nil {
		return false, fmt.Errorf("hold trial: %w", err)
	}
	q := res.At(ff.Q, stop)
	if !finite(q) {
		return false, fmt.Errorf("hold trial Q at t=%g: %w", stop, ErrNonFinite)
	}
	return q > vdd/2, nil
}
