package measure

import (
	"math"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/spice"
)

func TestSlewTimeRC(t *testing.T) {
	// RC step: 10-90% rise time = ln(9)·RC ≈ 2.197·RC.
	c := spice.New()
	in := c.Node("in")
	out := c.Node("out")
	R, C := 1000.0, 1e-12
	c.AddV("VIN", in, spice.Gnd, spice.PWL{T: []float64{0, 1e-12}, V: []float64{0, 1}})
	c.AddR("R", in, out, R)
	c.AddC("C", out, spice.Gnd, C)
	res, err := c.Transient(spice.TranOpts{Stop: 10e-9, Step: 5e-12, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	slew, err := SlewTime(res, out, 1.0, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(9) * R * C
	if math.Abs(slew-want)/want > 0.02 {
		t.Fatalf("slew %g want %g", slew, want)
	}
	if _, err := SlewTime(res, out, 1.0, false, 0); err == nil {
		t.Fatal("no falling edge: expected error")
	}
}

func TestSwitchingEnergyInverter(t *testing.T) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	b := circuits.InverterFO(3, 0.9, sz, nominalVS)
	res, err := b.Ckt.Transient(spice.TranOpts{Stop: circuits.PulsePeriod, Step: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Window around the falling input edge (output rises: supply charges
	// the load through the driver PMOS).
	tFall := circuits.PulseDelay + circuits.EdgeTime + circuits.PulseWidth
	e := SwitchingEnergy(res, b.VddSrc, 0.9, tFall-20e-12, tFall+120e-12)
	// Load: roughly 3 inverter input caps (~0.5 fF each) + self-loading at
	// 0.9 V: order 1-10 fJ. Assert the physical window.
	if e < 0.2e-15 || e > 30e-15 {
		t.Fatalf("switching energy %g J implausible", e)
	}
	// The rising-output transition must cost more supply charge than a
	// same-length quiet window (leakage only).
	quiet := SwitchingEnergy(res, b.VddSrc, 0.9, 650e-12, 790e-12)
	if quiet >= e {
		t.Fatalf("quiet window energy %g not below switching %g", quiet, e)
	}
}

func TestSlewShorterForStrongerDriver(t *testing.T) {
	sz1 := circuits.Sizing{WP: 300e-9, WN: 150e-9, L: 40e-9}
	sz2 := circuits.Sizing{WP: 1200e-9, WN: 600e-9, L: 40e-9}
	slew := func(sz circuits.Sizing) float64 {
		// Fixed external load makes the stronger driver visibly faster.
		b := circuits.InverterFO(1, 0.9, sz, nominalVS)
		b.Ckt.AddC("CEXT", b.Out, spice.Gnd, 2e-15)
		res, err := b.Ckt.Transient(spice.TranOpts{Stop: 200e-12, Step: 0.5e-12})
		if err != nil {
			t.Fatal(err)
		}
		s, err := SlewTime(res, b.Out, 0.9, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s2, s1 := slew(sz2), slew(sz1); s2 >= s1 {
		t.Fatalf("stronger driver slew %g not below weaker %g", s2, s1)
	}
}
