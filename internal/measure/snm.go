package measure

import (
	"math"

	"vstat/internal/circuits"
)

// SNMResult carries the static-noise-margin decomposition of a butterfly
// plot: the maximal square side in each lobe and the cell SNM (their
// minimum), all in volts.
type SNMResult struct {
	Upper, Lower, SNM float64
}

// SNM computes the static noise margin of a butterfly plot by Seevinck's
// largest-embedded-square construction. left is the transfer curve
// qb = f(q) obtained by forcing q; right is q = g(qb) obtained by forcing
// qb. Plotted on common (q, qb) axes, the two curves enclose two lobes; the
// SNM is the side of the largest square fitting in the smaller lobe.
func SNM(left, right circuits.ButterflyCurve) (SNMResult, error) {
	// Curve A on (x=q, y=qb) axes: y = f(x).
	fA, err := newInterp(left.In, left.Out)
	if err != nil {
		return SNMResult{}, err
	}
	// Curve B on the same axes: points (g(v), v) — invert to y = gInv(x).
	fB, err := newInterp(right.Out, right.In)
	if err != nil {
		return SNMResult{}, err
	}
	// The two lobes are the regions where one curve runs above the other;
	// the metastable crossing separates them, so the two orderings of the
	// same curve pair measure the two lobes.
	upper := maxSquare(fA, fB)
	lower := maxSquare(fB, fA)

	return SNMResult{Upper: upper, Lower: lower, SNM: math.Min(upper, lower)}, nil
}

// maxSquare returns the side of the largest axis-aligned square that fits
// between a falling upper curve yTop(x) and a falling lower curve yBot(x):
// for anchor x0, the square [x0, x0+s] × [yTop(x0+s)−s, yTop(x0+s)] fits
// when yTop(x0+s) − s ≥ yBot(x0); s(x0) solves the equality (monotone in
// s), and the result is max over x0.
func maxSquare(top, bot *interp1) float64 {
	lo := math.Max(top.lo(), bot.lo())
	hi := math.Min(top.hi(), bot.hi())
	if hi <= lo {
		return 0
	}
	const anchors = 240
	best := 0.0
	span := hi - lo
	for i := 0; i <= anchors; i++ {
		x0 := lo + span*float64(i)/anchors
		g := func(s float64) float64 { return top.at(x0+s) - s - bot.at(x0) }
		if g(0) <= 0 {
			continue // outside the lobe
		}
		sLo, sHi := 0.0, span
		if g(sHi) > 0 {
			best = math.Max(best, sHi)
			continue
		}
		for it := 0; it < 60; it++ {
			mid := 0.5 * (sLo + sHi)
			if g(mid) > 0 {
				sLo = mid
			} else {
				sHi = mid
			}
		}
		best = math.Max(best, sLo)
	}
	return best
}
