// Package measure extracts the circuit-level figures of merit the paper
// reports from simulation results: propagation delay and frequency,
// leakage, static noise margin from butterfly curves (largest embedded
// square, Seevinck's construction), and setup/hold times by pass/fail
// bisection over the data-to-clock offset.
package measure

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vstat/internal/spice"
)

// ErrNoCrossing is returned when a waveform never crosses the requested
// level in the requested direction.
var ErrNoCrossing = errors.New("measure: no crossing found")

// ErrNonFinite is returned when a waveform handed to an extraction contains
// NaN or Inf samples. Without the explicit check a NaN fails every
// comparison and would surface as a misleading ErrNoCrossing — or worse,
// silently pass a monotonicity check — so extractions reject it by name.
var ErrNonFinite = errors.New("measure: non-finite sample in waveform")

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// CrossTime returns the first time after tAfter at which waveform v crosses
// the given level in the given direction, linearly interpolated. Non-finite
// samples in the searched window are reported as ErrNonFinite rather than
// silently failing every crossing comparison.
func CrossTime(t, v []float64, level float64, rising bool, tAfter float64) (float64, error) {
	for i := 1; i < len(t); i++ {
		if t[i] <= tAfter {
			continue
		}
		a, b := v[i-1], v[i]
		if !finite(a) || !finite(b) {
			return 0, fmt.Errorf("sample near t=%g: %w", t[i], ErrNonFinite)
		}
		hit := (rising && a < level && b >= level) || (!rising && a > level && b <= level)
		if hit {
			f := (level - a) / (b - a)
			return t[i-1] + f*(t[i]-t[i-1]), nil
		}
	}
	return 0, ErrNoCrossing
}

// PropDelay measures the propagation delay between the 50% crossing of the
// input edge (rising if inRising) and the 50% crossing of the resulting
// output edge (opposite direction for an inverting stage).
func PropDelay(res *spice.TranResult, in, out int, vdd float64, inRising, inverting bool, tAfter float64) (float64, error) {
	tIn, err := CrossTime(res.Time, res.V(in), vdd/2, inRising, tAfter)
	if err != nil {
		return 0, fmt.Errorf("input edge: %w", err)
	}
	outRising := inRising != inverting
	tOut, err := CrossTime(res.Time, res.V(out), vdd/2, outRising, tIn)
	if err != nil {
		return 0, fmt.Errorf("output edge: %w", err)
	}
	return tOut - tIn, nil
}

// PairDelay measures the average of the output-falling and output-rising
// propagation delays of an inverting gate over one full input pulse, the
// per-sample delay statistic used for the paper's Figs. 5–7.
func PairDelay(res *spice.TranResult, in, out int, vdd float64) (float64, error) {
	dHL, err := PropDelay(res, in, out, vdd, true, true, 0)
	if err != nil {
		return 0, err
	}
	// The falling input edge follows the pulse width.
	tInRise, _ := CrossTime(res.Time, res.V(in), vdd/2, true, 0)
	dLH, err := PropDelay(res, in, out, vdd, false, true, tInRise)
	if err != nil {
		return 0, err
	}
	return 0.5 * (dHL + dLH), nil
}

// Leakage returns the static supply current drawn through the vdd source at
// the given operating point (positive value).
func Leakage(op *spice.OPResult, vddSrc int) float64 {
	return math.Abs(op.SourceI(vddSrc))
}

// interp1 is a piecewise-linear y(x) interpolator over samples that must be
// strictly monotone in x (ascending or descending).
type interp1 struct {
	x, y []float64 // ascending in x
}

func newInterp(x, y []float64) (*interp1, error) {
	n := len(x)
	if n < 2 || n != len(y) {
		return nil, errors.New("measure: interpolator needs >= 2 paired points")
	}
	asc := x[n-1] > x[0]
	xs := make([]float64, n)
	ys := make([]float64, n)
	if asc {
		copy(xs, x)
		copy(ys, y)
	} else {
		for i := range x {
			xs[i] = x[n-1-i]
			ys[i] = y[n-1-i]
		}
	}
	// Scan before the monotonicity check: NaN compares false against
	// everything, so a poisoned abscissa would sail through
	// sort.Float64sAreSorted and corrupt every later lookup.
	for i := range xs {
		if !finite(xs[i]) || !finite(ys[i]) {
			return nil, fmt.Errorf("interpolator point %d: %w", i, ErrNonFinite)
		}
	}
	if !sort.Float64sAreSorted(xs) {
		return nil, errors.New("measure: interpolator abscissa not monotone")
	}
	return &interp1{x: xs, y: ys}, nil
}

// at evaluates the interpolant, clamping outside the domain.
func (p *interp1) at(x float64) float64 {
	n := len(p.x)
	if x <= p.x[0] {
		return p.y[0]
	}
	if x >= p.x[n-1] {
		return p.y[n-1]
	}
	i := sort.SearchFloat64s(p.x, x)
	f := (x - p.x[i-1]) / (p.x[i] - p.x[i-1])
	return p.y[i-1] + f*(p.y[i]-p.y[i-1])
}

func (p *interp1) lo() float64 { return p.x[0] }
func (p *interp1) hi() float64 { return p.x[len(p.x)-1] }
