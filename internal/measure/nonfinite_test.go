package measure

import (
	"errors"
	"math"
	"testing"
)

func TestCrossTimeNaNInWindowRejected(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	vs := []float64{0, 0.2, math.NaN(), 0.8, 1}
	_, err := CrossTime(ts, vs, 0.5, true, 0)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite (NaN fails every comparison and "+
			"would otherwise masquerade as ErrNoCrossing)", err)
	}
}

func TestCrossTimeInfRejected(t *testing.T) {
	ts := []float64{0, 1, 2}
	vs := []float64{0, math.Inf(1), 1}
	if _, err := CrossTime(ts, vs, 0.5, true, 0); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestCrossTimeNaNBeforeWindowIgnored(t *testing.T) {
	// A poisoned sample strictly before tAfter is outside the searched
	// window and must not block the extraction.
	ts := []float64{0, 1, 2, 3, 4}
	vs := []float64{math.NaN(), math.NaN(), 0, 0.6, 1}
	got, err := CrossTime(ts, vs, 0.3, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("crossing at %g, want 2.5", got)
	}
}

func TestCrossTimeCleanStillNoCrossing(t *testing.T) {
	ts := []float64{0, 1, 2}
	vs := []float64{0, 0.1, 0.2}
	if _, err := CrossTime(ts, vs, 0.5, true, 0); !errors.Is(err, ErrNoCrossing) {
		t.Fatalf("err = %v, want ErrNoCrossing", err)
	}
}

func TestNewInterpNaNAbscissaRejected(t *testing.T) {
	// NaN silently passes sort.Float64sAreSorted (every comparison is
	// false), so without the explicit scan this would build a corrupt
	// interpolator instead of failing.
	_, err := newInterp([]float64{0, math.NaN(), 2}, []float64{1, 2, 3})
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestNewInterpNaNOrdinateRejected(t *testing.T) {
	_, err := newInterp([]float64{0, 1, 2}, []float64{1, math.NaN(), 3})
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}
