// Package variation implements the local (within-die) mismatch model of the
// paper: Pelgrom-style geometry scaling of the five independent statistical
// VS parameters (Table I), Gaussian sampling of per-device deltas, the
// paper-unit conversions for the α coefficients of Table II, and the
// within-die / inter-die variance decomposition of paper Eq. (1).
package variation

import (
	"fmt"
	"math"
	"math/rand"

	"vstat/internal/device"
)

// Alphas are the mismatch standard-deviation coefficients of paper Eq. (8):
//
//	σ_VT0  = A1 / √(W·L)
//	σ_Leff = A2 · √(L/W)
//	σ_Weff = A3 · √(W/L)
//	σ_µ    = A4 / √(W·L)
//	σ_Cinv = A5 / √(W·L)
//
// All fields are SI (W, L in meters): A1 in V·m, A2/A3 in m, A4 in
// m·m²/(V·s), A5 in m·F/m². Use FromPaperUnits/PaperUnits to convert to the
// customary units of paper Table II (V·nm, nm, nm·cm²/Vs, nm·µF/cm²).
type Alphas struct {
	A1, A2, A3, A4, A5 float64
}

// Unit conversion factors between paper units and SI for each coefficient.
const (
	a1PaperToSI = 1e-9        // V·nm → V·m
	a2PaperToSI = 1e-9        // nm → m
	a4PaperToSI = 1e-9 * 1e-4 // nm·cm²/Vs → m·m²/Vs
	a5PaperToSI = 1e-9 * 1e-2 // nm·µF/cm² → m·F/m²
)

// FromPaperUnits builds Alphas from coefficients expressed in the units of
// paper Table II: a1 in V·nm, a2 and a3 in nm, a4 in nm·cm²/(V·s), a5 in
// nm·µF/cm².
func FromPaperUnits(a1, a2, a3, a4, a5 float64) Alphas {
	return Alphas{
		A1: a1 * a1PaperToSI,
		A2: a2 * a2PaperToSI,
		A3: a3 * a2PaperToSI,
		A4: a4 * a4PaperToSI,
		A5: a5 * a5PaperToSI,
	}
}

// PaperUnits returns the coefficients in paper Table II units
// (a1 V·nm, a2/a3 nm, a4 nm·cm²/Vs, a5 nm·µF/cm²).
func (a Alphas) PaperUnits() (a1, a2, a3, a4, a5 float64) {
	return a.A1 / a1PaperToSI, a.A2 / a2PaperToSI, a.A3 / a2PaperToSI,
		a.A4 / a4PaperToSI, a.A5 / a5PaperToSI
}

// String formats the coefficients in paper units.
func (a Alphas) String() string {
	a1, a2, a3, a4, a5 := a.PaperUnits()
	return fmt.Sprintf("α1=%.3g V·nm α2=%.3g nm α3=%.3g nm α4=%.3g nm·cm²/Vs α5=%.3g nm·µF/cm²",
		a1, a2, a3, a4, a5)
}

// Sigmas are the per-geometry mismatch standard deviations in SI units.
type Sigmas struct {
	VT0  float64 // V
	L    float64 // m
	W    float64 // m
	Mu   float64 // m²/(V·s)
	Cinv float64 // F/m²
}

// Sigmas evaluates the geometry scaling laws at drawn width w and length l
// (meters).
func (a Alphas) Sigmas(w, l float64) Sigmas {
	if w <= 0 || l <= 0 {
		panic("variation: non-positive geometry")
	}
	sqrtWL := math.Sqrt(w * l)
	return Sigmas{
		VT0:  a.A1 / sqrtWL,
		L:    a.A2 * math.Sqrt(l/w),
		W:    a.A3 * math.Sqrt(w/l),
		Mu:   a.A4 / sqrtWL,
		Cinv: a.A5 / sqrtWL,
	}
}

// Sample draws one set of independent Gaussian local-mismatch deltas for a
// device of drawn geometry (w, l). Every transistor instance in a Monte
// Carlo sample gets its own independent draw, reflecting the uncorrelated
// nature of within-die random variation (RDF, LER, OTF, stress — paper
// Table I).
func (a Alphas) Sample(rng *rand.Rand, w, l float64) device.Deltas {
	s := a.Sigmas(w, l)
	return device.Deltas{
		DVT0:  rng.NormFloat64() * s.VT0,
		DL:    rng.NormFloat64() * s.L,
		DW:    rng.NormFloat64() * s.W,
		DMu:   rng.NormFloat64() * s.Mu,
		DCinv: rng.NormFloat64() * s.Cinv,
	}
}

// GoldenTruthNMOS/PMOS are the ground-truth mismatch coefficients assigned
// to the golden model's native parameter set (Vth0, ΔL, ΔW, U0, Cox). They
// play the role of the silicon/industrial-kit statistics the paper measures
// and then backward-propagates onto VS parameters. Magnitudes follow paper
// Table II, with A4 rescaled to the golden model's higher low-field mobility
// so the *relative* σµ/µ matches, and A5 rescaled to its Cox.
func GoldenTruthNMOS() Alphas { return FromPaperUnits(2.30, 3.71, 3.71, 1246, 0.32) }

// GoldenTruthPMOS returns the PMOS ground-truth coefficients.
func GoldenTruthPMOS() Alphas { return FromPaperUnits(2.86, 3.66, 3.66, 586, 0.89) }

// GoldenTruth returns the ground-truth coefficients for the given polarity.
func GoldenTruth(k device.Kind) Alphas {
	if k == device.PMOS {
		return GoldenTruthPMOS()
	}
	return GoldenTruthNMOS()
}

// InterDieSigma implements paper Eq. (1): the inter-die (global) component
// of an electrical metric's variation given its total and within-die
// standard deviations, σ²_inter = σ²_total − σ²_within. It returns an error
// when the within-die component exceeds the total (inconsistent inputs).
func InterDieSigma(total, within float64) (float64, error) {
	if total < 0 || within < 0 {
		return 0, fmt.Errorf("variation: negative sigma (total=%g, within=%g)", total, within)
	}
	if within > total {
		return 0, fmt.Errorf("variation: within-die σ %g exceeds total σ %g", within, total)
	}
	return math.Sqrt(total*total - within*within), nil
}
