package variation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vstat/internal/stats"
)

func TestPaperUnitRoundTrip(t *testing.T) {
	a := FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	a1, a2, a3, a4, a5 := a.PaperUnits()
	for _, pair := range [][2]float64{{a1, 2.3}, {a2, 3.71}, {a3, 3.71}, {a4, 944}, {a5, 0.29}} {
		if math.Abs(pair[0]-pair[1]) > 1e-9*pair[1] {
			t.Fatalf("round trip: got %g want %g", pair[0], pair[1])
		}
	}
}

func TestSigmaMagnitudesMatchPaperScale(t *testing.T) {
	// Paper Table II NMOS at W/L = 600/40 nm: σVT0 = 2.3/√24000 ≈ 14.8 mV.
	a := FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	s := a.Sigmas(600e-9, 40e-9)
	if math.Abs(s.VT0-0.01485) > 3e-4 {
		t.Fatalf("σVT0 = %g V, want ≈ 14.8 mV", s.VT0)
	}
	// σL = 3.71·√(40/600) ≈ 0.958 nm.
	if math.Abs(s.L-0.958e-9) > 0.02e-9 {
		t.Fatalf("σL = %g m", s.L)
	}
	// σW = 3.71·√(600/40) ≈ 14.4 nm.
	if math.Abs(s.W-14.37e-9) > 0.2e-9 {
		t.Fatalf("σW = %g m", s.W)
	}
	// σµ = 944 nm·cm²/Vs / 155 nm ≈ 6.1 cm²/Vs.
	if math.Abs(s.Mu-6.09e-4) > 0.1e-4 {
		t.Fatalf("σµ = %g m²/Vs", s.Mu)
	}
	// σCinv ≈ 0.00187 µF/cm²; relative to ~1.5 µF/cm² that is ~0.12% < 0.5%
	// as the paper states for the tightly controlled oxide.
	relCinv := s.Cinv / (1.5e-2)
	if relCinv > 0.005 {
		t.Fatalf("σCinv/Cinv = %g, paper says < 0.5%%", relCinv)
	}
}

func TestPelgromAreaScalingProperty(t *testing.T) {
	a := GoldenTruthNMOS()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := (100 + 1400*r.Float64()) * 1e-9
		l := (30 + 100*r.Float64()) * 1e-9
		k := 1 + 3*r.Float64()
		s1 := a.Sigmas(w, l)
		s2 := a.Sigmas(k*w, k*l) // scale area by k², same aspect ratio for L/W laws? No: L/W invariant, so σL scales √(kl/kw)=√(l/w): unchanged... check laws individually.
		// σVT0, σµ, σCinv scale as 1/k for area k²·WL.
		ok := math.Abs(s2.VT0-s1.VT0/k) < 1e-12*s1.VT0/k*1e3 &&
			math.Abs(s2.Mu-s1.Mu/k) < 1e-9*s1.Mu &&
			math.Abs(s2.Cinv-s1.Cinv/k) < 1e-9*s1.Cinv
		// σL, σW depend only on aspect ratio: invariant under uniform scaling.
		ok = ok && math.Abs(s2.L-s1.L) < 1e-12*s1.L*1e3 && math.Abs(s2.W-s1.W) < 1e-9*s1.W
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmaRatioLOverW(t *testing.T) {
	// The α2=α3 constraint implies σL/σW = L/W (paper Sec. III).
	a := GoldenTruthNMOS()
	for _, g := range [][2]float64{{600e-9, 40e-9}, {120e-9, 40e-9}, {1500e-9, 40e-9}} {
		s := a.Sigmas(g[0], g[1])
		want := g[1] / g[0]
		if got := s.L / s.W; math.Abs(got-want) > 1e-12*want*1e3 {
			t.Fatalf("σL/σW = %g want L/W = %g", got, want)
		}
	}
}

func TestSampleStatistics(t *testing.T) {
	a := GoldenTruthNMOS()
	rng := rand.New(rand.NewSource(123))
	w, l := 600e-9, 40e-9
	s := a.Sigmas(w, l)
	n := 20000
	vt := make([]float64, n)
	dl := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.Sample(rng, w, l)
		vt[i] = d.DVT0
		dl[i] = d.DL
	}
	if m := stats.Mean(vt); math.Abs(m) > 3*s.VT0/math.Sqrt(float64(n)) {
		t.Fatalf("sample mean VT0 %g biased", m)
	}
	if sd := stats.StdDev(vt); math.Abs(sd-s.VT0)/s.VT0 > 0.03 {
		t.Fatalf("sample σVT0 %g want %g", sd, s.VT0)
	}
	if sd := stats.StdDev(dl); math.Abs(sd-s.L)/s.L > 0.03 {
		t.Fatalf("sample σL %g want %g", sd, s.L)
	}
	// Independence: VT0 and L draws uncorrelated.
	if r := stats.Correlation(vt, dl); math.Abs(r) > 0.03 {
		t.Fatalf("sampled deltas correlated: r=%g", r)
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	a := GoldenTruthPMOS()
	d1 := a.Sample(rand.New(rand.NewSource(7)), 300e-9, 40e-9)
	d2 := a.Sample(rand.New(rand.NewSource(7)), 300e-9, 40e-9)
	if d1 != d2 {
		t.Fatal("same seed must reproduce the same deltas")
	}
}

func TestInterDieSigma(t *testing.T) {
	got, err := InterDieSigma(5, 3)
	if err != nil || math.Abs(got-4) > 1e-12 {
		t.Fatalf("InterDieSigma(5,3) = %g, %v", got, err)
	}
	if _, err := InterDieSigma(3, 5); err == nil {
		t.Fatal("expected error when within > total")
	}
	if _, err := InterDieSigma(-1, 0); err == nil {
		t.Fatal("expected error for negative sigma")
	}
}

func TestSigmasPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero geometry")
		}
	}()
	GoldenTruthNMOS().Sigmas(0, 40e-9)
}

func TestStringContainsPaperUnits(t *testing.T) {
	s := GoldenTruthNMOS().String()
	if len(s) == 0 {
		t.Fatal("empty String")
	}
}
