package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestBudgetUnlimited(t *testing.T) {
	if !(Budget{}).Unlimited() {
		t.Fatal("zero Budget must be unlimited")
	}
	if (Budget{Wall: time.Second}).Unlimited() {
		t.Fatal("Wall-bounded Budget reported unlimited")
	}
	if (Budget{MaxNewton: 10}).Unlimited() {
		t.Fatal("iteration-bounded Budget reported unlimited")
	}
}

func TestBudgetErrorKinds(t *testing.T) {
	cases := []struct {
		err  *BudgetError
		want string
	}{
		{&BudgetError{Kind: OverWall, Elapsed: 3 * time.Millisecond, Wall: time.Millisecond}, "wall-deadline"},
		{&BudgetError{Kind: OverIters, Iters: 500, Max: 100}, "iteration-cap"},
		{&BudgetError{Kind: OverHang, Elapsed: time.Second, Wall: time.Millisecond}, "hang-watchdog"},
	}
	for _, tc := range cases {
		if !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("Error() = %q, want kind %q", tc.err.Error(), tc.want)
		}
		if !IsBudget(tc.err) {
			t.Errorf("IsBudget(%v) = false", tc.err)
		}
		if !Interrupted(tc.err) {
			t.Errorf("Interrupted(%v) = false", tc.err)
		}
		if IsCancellation(tc.err) {
			t.Errorf("IsCancellation(%v) = true for a budget error", tc.err)
		}
	}
}

func TestBudgetErrorWrapped(t *testing.T) {
	inner := &BudgetError{Kind: OverWall}
	wrapped := fmt.Errorf("sample 12: %w", inner)
	if !IsBudget(wrapped) {
		t.Fatal("IsBudget must see through wrapping")
	}
	if !Interrupted(wrapped) {
		t.Fatal("Interrupted must see through wrapping")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fmt.Errorf("newton: %w", ctx.Err())
	if !IsCancellation(err) {
		t.Fatal("IsCancellation(context.Canceled) = false")
	}
	if !Interrupted(err) {
		t.Fatal("Interrupted(context.Canceled) = false")
	}
	if IsBudget(err) {
		t.Fatal("IsBudget(context.Canceled) = true")
	}
	if !IsCancellation(context.DeadlineExceeded) {
		t.Fatal("IsCancellation(DeadlineExceeded) = false")
	}
}

func TestInterruptedOrdinaryError(t *testing.T) {
	if Interrupted(errors.New("no convergence")) {
		t.Fatal("ordinary error classified as interruption")
	}
	if Interrupted(nil) {
		t.Fatal("nil error classified as interruption")
	}
}
