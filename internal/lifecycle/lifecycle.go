// Package lifecycle defines the run-lifecycle vocabulary shared by the
// solver (internal/spice), the Monte Carlo driver (internal/montecarlo),
// and the CLIs: the per-sample Budget a solve must finish within, the typed
// BudgetError classifying an overrun, and the helpers that separate
// "this sample is bad" (a budget overrun, handled by the failure policy)
// from "this run is over" (a context cancellation, which aborts claiming).
//
// The package sits below both spice and montecarlo so neither has to import
// the other: spice enforces budgets at Newton iteration boundaries,
// montecarlo arms them per sample and runs the hang watchdog.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Budget bounds one Monte Carlo sample's solver work. The zero value is
// unlimited. Wall is enforced two ways: cooperatively by the solver's
// iteration-boundary deadline check (cheap, catches slow-but-alive solves)
// and externally by the montecarlo hang watchdog (catches solves wedged
// inside a device evaluation that never returns to an iteration boundary).
type Budget struct {
	// Wall is the maximum wall-clock time per sample; 0 = unlimited.
	Wall time.Duration
	// MaxNewton caps the total Newton iterations a sample may spend across
	// every analysis and rescue stage; 0 = unlimited.
	MaxNewton int64
}

// Unlimited reports whether the budget imposes no bound at all.
func (b Budget) Unlimited() bool { return b.Wall <= 0 && b.MaxNewton <= 0 }

// BudgetKind classifies which bound a BudgetError tripped.
type BudgetKind int

const (
	// OverWall: the solver's own deadline check saw Wall exceeded at an
	// iteration boundary.
	OverWall BudgetKind = iota
	// OverIters: the cumulative Newton iteration count crossed MaxNewton.
	OverIters
	// OverHang: the montecarlo watchdog abandoned the sample because it ran
	// past Wall plus the hang grace without reaching a check point (a solve
	// wedged inside a model evaluation).
	OverHang
)

// String names the kind for error text and metrics.
func (k BudgetKind) String() string {
	switch k {
	case OverWall:
		return "wall-deadline"
	case OverIters:
		return "iteration-cap"
	case OverHang:
		return "hang-watchdog"
	}
	return "unknown"
}

// BudgetError reports one sample exceeding its Budget. Under
// montecarlo.SkipAndRecord it is an ordinary per-sample failure: recorded in
// the RunReport, the rest of the population unaffected.
type BudgetError struct {
	Kind    BudgetKind
	Elapsed time.Duration // wall time spent when the overrun was detected
	Wall    time.Duration // the budget's wall bound (0 if unbounded)
	Iters   int64         // Newton iterations spent when detected
	Max     int64         // the budget's iteration bound (0 if unbounded)
}

// Error renders the overrun with the tripped bound.
func (e *BudgetError) Error() string {
	switch e.Kind {
	case OverIters:
		return fmt.Sprintf("lifecycle: sample exceeded budget (%s): %d Newton iterations, cap %d",
			e.Kind, e.Iters, e.Max)
	case OverHang:
		return fmt.Sprintf("lifecycle: sample exceeded budget (%s): hung for %s, wall budget %s",
			e.Kind, e.Elapsed.Round(time.Microsecond), e.Wall)
	default:
		return fmt.Sprintf("lifecycle: sample exceeded budget (%s): ran %s, wall budget %s",
			e.Kind, e.Elapsed.Round(time.Microsecond), e.Wall)
	}
}

// IsBudget reports whether err is (or wraps) a *BudgetError.
func IsBudget(err error) bool {
	var be *BudgetError
	return errors.As(err, &be)
}

// IsCancellation reports whether err stems from a cancelled or expired run
// context — the "stop everything" signal, as opposed to a per-sample budget
// overrun.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Interrupted reports whether err is a lifecycle stop — a cancellation or a
// budget overrun. Rescue ladders must not climb further rungs on an
// interrupted solve: retrying a cancelled or over-budget sample only burns
// more of exactly the resource the error is protecting.
func Interrupted(err error) bool {
	return IsBudget(err) || IsCancellation(err)
}
