package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"vstat/internal/lifecycle"
)

// ctxSample is the deterministic per-index value the lifecycle tests use:
// non-zero for every index, dependent on the per-sample RNG stream so a
// wrong (seed, idx) pairing is caught.
func ctxSample(idx int, rng *rand.Rand) (float64, error) {
	return 1 + float64(idx) + rng.Float64(), nil
}

func TestMapCtxNilContextMatchesMap(t *testing.T) {
	const n, seed = 64, int64(7)
	want, err := Map(n, seed, 3, ctxSample)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCtx[float64](nil, n, seed, 3, ctxSample)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %.17g, Map gives %.17g", i, got[i], want[i])
		}
	}
}

// TestMapCtxCancelPartialBitIdentical is the drain contract: a run cancelled
// midway returns its partial results, and every sample it did complete is
// bit-identical to the same index of an uninterrupted run — at any worker
// count, because a sample's outcome depends only on (seed, idx).
func TestMapCtxCancelPartialBitIdentical(t *testing.T) {
	const n, seed = 400, int64(99)
	want, err := Map(n, seed, 1, ctxSample)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 7} {
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Int64
		got, rep, err := MapReportCtx(ctx, n, seed, workers, RunOpts{},
			func(idx int, rng *rand.Rand) (float64, error) {
				if done.Add(1) == n/2 {
					cancel()
				}
				return ctxSample(idx, rng)
			})
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: cancelled run returned nil error", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", workers, err)
		}
		if !rep.Cancelled {
			t.Fatalf("workers=%d: report not marked cancelled: %s", workers, rep.String())
		}
		if rep.Succeeded == 0 || rep.Succeeded >= n {
			t.Fatalf("workers=%d: expected a partial run, got %d/%d completed",
				workers, rep.Succeeded, n)
		}
		completed := 0
		for i := range got {
			if got[i] == 0 {
				continue // never claimed (or in flight at cancel)
			}
			if got[i] != want[i] {
				t.Fatalf("workers=%d: completed sample %d = %.17g, uninterrupted run %.17g",
					workers, i, got[i], want[i])
			}
			completed++
		}
		if completed != rep.Succeeded {
			t.Fatalf("workers=%d: %d non-zero results vs %d reported successes",
				workers, completed, rep.Succeeded)
		}
	}
}

// TestMapCtxInFlightCancellationNotAFailure: a sample whose solve dies with
// the context's own error (the armed-circuit path) is counted as
// Interrupted, not Failed — it will produce the identical result when the
// resumed run re-runs it, so it must not burn failure budget or be
// recorded anywhere.
func TestMapCtxInFlightCancellationNotAFailure(t *testing.T) {
	const n, seed = 16, int64(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, rep, err := MapReportCtx(ctx, n, seed, 1, RunOpts{Policy: Policy{OnFailure: FailFast}},
		func(idx int, rng *rand.Rand) (float64, error) {
			if idx == 5 {
				cancel()
				return 0, context.Canceled // what an armed solver returns
			}
			return ctxSample(idx, rng)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if rep.Interrupted != 1 {
		t.Fatalf("Interrupted = %d, want 1 (report %s)", rep.Interrupted, rep.String())
	}
	if rep.Failed != 0 || len(rep.Failures) != 0 {
		t.Fatalf("in-flight cancellation recorded as failure: %s", rep.String())
	}
	if rep.Attempted != rep.Succeeded {
		t.Fatalf("interrupted sample counted as attempted: %s", rep.String())
	}
}

// armRecorder is a worker state that records the budget each sample was
// armed with, standing in for a spice.Circuit.
type armRecorder struct {
	budget lifecycle.Budget
	armed  bool
}

func (a *armRecorder) ArmSample(ctx context.Context, b lifecycle.Budget) {
	a.budget = b
	a.armed = true
}

// TestBudgetArmsStateAndFailsSample: the engine must arm every sample with
// RunOpts.Budget, and a *lifecycle.BudgetError coming back from the sample
// is an ordinary per-sample failure under SkipAndRecord.
func TestBudgetArmsStateAndFailsSample(t *testing.T) {
	const n, seed = 12, int64(41)
	budget := lifecycle.Budget{Wall: time.Hour, MaxNewton: 50}
	out, rep, err := MapPooledReportCtx(context.Background(), n, seed, 2,
		RunOpts{Policy: SkipUpTo(0.5), Budget: budget},
		func(int) (*armRecorder, error) { return &armRecorder{}, nil },
		func(st *armRecorder, idx int, rng *rand.Rand) (float64, error) {
			if !st.armed || st.budget != budget {
				t.Errorf("sample %d ran with budget %+v, want %+v", idx, st.budget, budget)
			}
			st.armed = false
			if idx == 4 {
				return 0, &lifecycle.BudgetError{Kind: lifecycle.OverIters, Iters: 51, Max: 50}
			}
			return ctxSample(idx, rng)
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || len(rep.Failures) != 1 || rep.Failures[0].Idx != 4 {
		t.Fatalf("report %s", rep.String())
	}
	if !lifecycle.IsBudget(rep.Failures[0].Err) {
		t.Fatalf("failure %v is not a budget error", rep.Failures[0].Err)
	}
	if out[4] != 0 {
		t.Fatalf("failed sample holds value %g", out[4])
	}
}

// TestWatchdogAbandonsHungSample is the hang contract: one sample wedges
// inside its evaluation (no iteration boundary, so no cooperative check can
// fire), the watchdog abandons it as a typed OverHang failure within
// Wall+HangGrace, a replacement worker keeps the pool at strength, and every
// sibling sample still completes bit-identically.
func TestWatchdogAbandonsHungSample(t *testing.T) {
	const n, seed = 40, int64(13)
	const hungIdx = 9
	want, err := Map(n, seed, 1, ctxSample)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release) // let the abandoned goroutine exit at test end
	start := time.Now()
	out, rep, err := MapPooledReportCtx(context.Background(), n, seed, 2,
		RunOpts{
			Policy:    SkipUpTo(0.25),
			Budget:    lifecycle.Budget{Wall: 20 * time.Millisecond},
			HangGrace: 20 * time.Millisecond,
		},
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
			if idx == hungIdx {
				<-release // a wedged model evaluation
			}
			return ctxSample(idx, rng)
		})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("run with one hung sample took %v — watchdog did not fire", elapsed)
	}
	if rep.Failed != 1 || len(rep.Failures) != 1 || rep.Failures[0].Idx != hungIdx {
		t.Fatalf("report %s", rep.String())
	}
	var be *lifecycle.BudgetError
	if !errors.As(rep.Failures[0].Err, &be) || be.Kind != lifecycle.OverHang {
		t.Fatalf("hung sample failed with %v, want an OverHang budget error", rep.Failures[0].Err)
	}
	if rep.Succeeded != n-1 {
		t.Fatalf("siblings of the hung sample did not all complete: %s", rep.String())
	}
	for i := range want {
		if i == hungIdx {
			continue
		}
		if out[i] != want[i] {
			t.Fatalf("sample %d = %.17g, clean run %.17g — hang not isolated", i, out[i], want[i])
		}
	}
}

// TestWatchdogHangFailFast: under the default policy a hang abandonment
// trips the failure cap and aborts the run instead of silently stalling it.
func TestWatchdogHangFailFast(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, rep, err := MapPooledReportCtx(context.Background(), 8, 1, 1,
		RunOpts{Budget: lifecycle.Budget{Wall: 10 * time.Millisecond}, HangGrace: 10 * time.Millisecond},
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
			if idx == 2 {
				<-release
			}
			return ctxSample(idx, rng)
		})
	if err == nil {
		t.Fatal("FailFast run with a hung sample returned nil error")
	}
	if !lifecycle.IsBudget(err) {
		t.Fatalf("abort error %v is not a budget error", err)
	}
	if rep.Failed != 1 || rep.Failures[0].Idx != 2 {
		t.Fatalf("report %s", rep.String())
	}
}

// TestOffsetShardsBitIdenticalToFullRun splits one run into index-range
// shards executed via RunOpts.Offset and checks the concatenation is
// bit-identical to the single full run — the determinism contract the
// internal/shard coordinator is built on. Failures must carry global
// indices on both the scalar and the batched engine.
func TestOffsetShardsBitIdenticalToFullRun(t *testing.T) {
	const n = 96
	const seed = int64(4242)
	newState := func(worker int) (struct{}, error) { return struct{}{}, nil }
	fn := func(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
		if idx%17 == 5 {
			return 0, fmt.Errorf("synthetic failure at sample %d", idx)
		}
		return float64(idx) + rng.Float64(), nil
	}
	pol := SkipUpTo(1.0)

	want, wantRep, err := MapPooledReportCtx(context.Background(), n, seed, 3,
		RunOpts{Policy: pol}, newState, fn)
	if err != nil {
		t.Fatal(err)
	}

	for _, shardSize := range []int{16, 32, 96, 7} {
		got := make([]float64, 0, n)
		var failures []SampleFailure
		for lo := 0; lo < n; lo += shardSize {
			hi := lo + shardSize
			if hi > n {
				hi = n
			}
			part, rep, err := MapPooledReportCtx(context.Background(), hi-lo, seed, 2,
				RunOpts{Policy: pol, Offset: lo}, newState, fn)
			if err != nil {
				t.Fatalf("shard [%d,%d): %v", lo, hi, err)
			}
			got = append(got, part...)
			failures = append(failures, rep.Failures...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shardSize %d: sample %d = %.17g, full run %.17g",
					shardSize, i, got[i], want[i])
			}
		}
		if len(failures) != len(wantRep.Failures) {
			t.Fatalf("shardSize %d: %d failures, full run %d",
				shardSize, len(failures), len(wantRep.Failures))
		}
		for i, f := range failures {
			if f.Idx != wantRep.Failures[i].Idx || f.Err.Error() != wantRep.Failures[i].Err.Error() {
				t.Fatalf("shardSize %d: failure %d = (%d, %q), full run (%d, %q)",
					shardSize, i, f.Idx, f.Err.Error(),
					wantRep.Failures[i].Idx, wantRep.Failures[i].Err.Error())
			}
		}
	}

	// Batched engine: same offset contract — fn sees global indices and the
	// lane RNGs are seeded by global index.
	bfn := func(_ struct{}, idxs []int, rngs []*rand.Rand, out []float64, errs []error) {
		for j, idx := range idxs {
			out[j], errs[j] = fn(struct{}{}, idx, rngs[j])
		}
	}
	for lo := 0; lo < n; lo += 32 {
		part, rep, err := MapPooledBatchReportCtx(context.Background(), 32, seed, 2, 4,
			RunOpts{Policy: pol, Offset: lo}, newState, bfn)
		if err != nil {
			t.Fatalf("batched shard at %d: %v", lo, err)
		}
		for j := range part {
			if part[j] != want[lo+j] {
				t.Fatalf("batched shard at %d: sample %d = %.17g, full run %.17g",
					lo, lo+j, part[j], want[lo+j])
			}
		}
		for _, f := range rep.Failures {
			if f.Idx < lo || f.Idx >= lo+32 {
				t.Fatalf("batched shard at %d: failure idx %d outside global range", lo, f.Idx)
			}
			if f.Idx%17 != 5 {
				t.Fatalf("batched shard at %d: failure idx %d is not a scripted failure — local index leaked", lo, f.Idx)
			}
		}
	}
}
