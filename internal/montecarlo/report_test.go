package montecarlo

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// failOn builds a sample fn that fails on the given indices and otherwise
// returns a deterministic function of idx.
func failOn(bad map[int]error) func(idx int, rng *rand.Rand) (float64, error) {
	return func(idx int, rng *rand.Rand) (float64, error) {
		if err, ok := bad[idx]; ok {
			return 0, err
		}
		return float64(idx) * 2, nil
	}
}

func TestMapReportSkipAndRecord(t *testing.T) {
	bad := map[int]error{13: errors.New("boom13"), 57: errors.New("boom57")}
	const n = 100
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		out, rep, err := MapReport(n, 7, workers, Policy{OnFailure: SkipAndRecord}, failOn(bad))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Attempted != n || rep.Succeeded != n-2 || rep.Failed != 2 {
			t.Fatalf("workers=%d: report %+v", workers, rep)
		}
		if len(rep.Failures) != 2 || rep.Failures[0].Idx != 13 || rep.Failures[1].Idx != 57 {
			t.Fatalf("workers=%d: failures %v", workers, rep.Failures)
		}
		for i, v := range out {
			if _, isBad := bad[i]; isBad {
				if v != 0 {
					t.Fatalf("failed sample %d has non-zero slot %g", i, v)
				}
			} else if v != float64(i)*2 {
				t.Fatalf("sample %d = %g", i, v)
			}
		}
		kept := Compact(out, rep)
		if len(kept) != n-2 {
			t.Fatalf("Compact kept %d of %d", len(kept), n)
		}
	}
}

func TestMapReportFailFastLowestIndex(t *testing.T) {
	// Many failing indices: the reported failure must be the lowest one that
	// ran, which (claims being a contiguous prefix) is the global lowest.
	bad := map[int]error{12: errors.New("low"), 40: errors.New("high"), 77: errors.New("higher")}
	for _, workers := range []int{1, 4} {
		_, rep, err := MapReport(100, 3, workers, Policy{}, failOn(bad))
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !errors.Is(err, bad[12]) {
			t.Fatalf("workers=%d: err %v does not wrap lowest-index failure", workers, err)
		}
		if len(rep.Failures) == 0 || rep.Failures[0].Idx != 12 {
			t.Fatalf("workers=%d: failures %v", workers, rep.Failures)
		}
	}
}

func TestMapReportCapTrip(t *testing.T) {
	// 34 of 100 samples fail; a 10% cap must trip for any worker count.
	fn := func(idx int, rng *rand.Rand) (float64, error) {
		if idx%3 == 0 {
			return 0, errors.New("fail")
		}
		return 1, nil
	}
	for _, workers := range []int{1, 4} {
		_, rep, err := MapReport(100, 5, workers, SkipUpTo(0.1), fn)
		if !errors.Is(err, ErrTooManyFailures) {
			t.Fatalf("workers=%d: err = %v, want ErrTooManyFailures", workers, err)
		}
		if !rep.CapTripped {
			t.Fatalf("workers=%d: CapTripped not set", workers)
		}
	}
	// The same failure pattern under a generous cap completes.
	_, rep, err := MapReport(100, 5, 4, SkipUpTo(0.5), fn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapTripped || rep.Failed != 34 {
		t.Fatalf("report %+v", rep)
	}
}

func TestMapReportPanicRecovery(t *testing.T) {
	const n = 40
	for _, workers := range []int{1, 4} {
		out, rep, err := MapReport(n, 1, workers, Policy{OnFailure: SkipAndRecord},
			func(idx int, rng *rand.Rand) (float64, error) {
				if idx == 5 {
					panic("sample 5 exploded")
				}
				return float64(idx), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Failed != 1 || rep.Panics != 1 {
			t.Fatalf("workers=%d: report %+v", workers, rep)
		}
		var pe *PanicError
		if !errors.As(rep.Failures[0].Err, &pe) {
			t.Fatalf("workers=%d: failure err %T", workers, rep.Failures[0].Err)
		}
		if pe.Value != "sample 5 exploded" || len(pe.Stack) == 0 {
			t.Fatalf("panic error %+v", pe)
		}
		// Every other sample completed despite the in-pool panic.
		for i, v := range out {
			if i != 5 && v != float64(i) {
				t.Fatalf("sample %d = %g after panic", i, v)
			}
		}
	}
}

func TestMapReportPanicFailFast(t *testing.T) {
	_, _, err := MapReport(20, 1, 2, Policy{},
		func(idx int, rng *rand.Rand) (int, error) {
			if idx == 3 {
				panic("boom")
			}
			return idx, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *PanicError", err)
	}
}

func TestMapPooledReportStatePanic(t *testing.T) {
	// A panicking newState must surface as a worker state error, not kill
	// the process.
	_, _, err := MapPooledReport(10, 1, 2, Policy{},
		func(w int) (int, error) {
			if w == 0 {
				panic("state build failed")
			}
			return w, nil
		},
		func(st, idx int, rng *rand.Rand) (int, error) { return idx, nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *PanicError", err)
	}
}

// rescueState fakes a pooled bench whose solver counters advance by a
// per-sample-deterministic amount.
type rescueState struct{ gmin, halve int64 }

func (s *rescueState) RescueCounts() map[string]int64 {
	out := map[string]int64{}
	if s.gmin != 0 {
		out["dc-gmin"] = s.gmin
	}
	if s.halve != 0 {
		out["tran-halve"] = s.halve
	}
	return out
}

func TestMapPooledReportRescueAggregationWorkerInvariant(t *testing.T) {
	const n = 60
	run := func(workers int) RunReport {
		_, rep, err := MapPooledReport(n, 9, workers, Policy{},
			func(int) (*rescueState, error) { return &rescueState{}, nil },
			func(st *rescueState, idx int, rng *rand.Rand) (int, error) {
				if idx%7 == 0 {
					st.gmin++
				}
				if idx%13 == 0 {
					st.halve += 2
				}
				return idx, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if !reflect.DeepEqual(got.Rescued, want.Rescued) {
			t.Fatalf("workers=%d: rescued %v, want %v", workers, got.Rescued, want.Rescued)
		}
		if got.Attempted != want.Attempted || got.Succeeded != want.Succeeded {
			t.Fatalf("workers=%d: %+v vs %+v", workers, got, want)
		}
	}
	if want.Rescued["dc-gmin"] == 0 || want.Rescued["tran-halve"] == 0 {
		t.Fatalf("rescue counters not aggregated: %v", want.Rescued)
	}
}

func TestRunReportMergeAndString(t *testing.T) {
	a := RunReport{Attempted: 10, Succeeded: 9, Failed: 1,
		Failures: []SampleFailure{{Idx: 3, Err: errors.New("x")}},
		Rescued:  map[string]int64{"dc-gmin": 2}}
	b := RunReport{Attempted: 5, Succeeded: 5, Rescued: map[string]int64{"dc-gmin": 1, "tran-halve": 4}}
	a.Merge(b)
	if a.Attempted != 15 || a.Succeeded != 14 || a.Failed != 1 {
		t.Fatalf("merged %+v", a)
	}
	if a.Rescued["dc-gmin"] != 3 || a.Rescued["tran-halve"] != 4 {
		t.Fatalf("merged rescued %v", a.Rescued)
	}
	s := a.String()
	for _, want := range []string{"attempted 15", "failed 1", "rescued[dc-gmin]=3"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if a.Clean() {
		t.Fatal("non-clean report reported clean")
	}
	if (RunReport{Attempted: 3, Succeeded: 3}).Clean() != true {
		t.Fatal("clean report not clean")
	}
}

func TestFailFrac(t *testing.T) {
	if (RunReport{}).FailFrac() != 0 {
		t.Fatal("empty run FailFrac")
	}
	r := RunReport{Attempted: 200, Failed: 5}
	if r.FailFrac() != 0.025 {
		t.Fatalf("FailFrac = %g", r.FailFrac())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestCompactNoFailures(t *testing.T) {
	out := []int{1, 2, 3}
	if got := Compact(out, RunReport{}); &got[0] != &out[0] {
		t.Fatal("Compact should return the input unchanged when nothing failed")
	}
}

func TestSkipAndRecordDeterministicOutputs(t *testing.T) {
	// With failures recorded (not aborting), the surviving outputs must be
	// bit-identical across worker counts.
	fn := func(idx int, rng *rand.Rand) (float64, error) {
		if idx == 11 {
			return 0, fmt.Errorf("sample %d down", idx)
		}
		return rng.NormFloat64(), nil
	}
	ref, _, err := MapReport(64, 42, 1, Policy{OnFailure: SkipAndRecord}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, _, err := MapReport(64, 42, workers, Policy{OnFailure: SkipAndRecord}, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d sample %d: %.17g vs %.17g", workers, i, got[i], ref[i])
			}
		}
	}
}
