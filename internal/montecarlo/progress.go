package montecarlo

import "sync/atomic"

// ProgressSink receives live run-progress callbacks from MapPooledReport
// (and everything layered on it). The interface is structural so the
// observability layer can implement it without this package importing it:
// obs.Progress satisfies it directly. Implementations must be safe for
// concurrent SampleDone calls from every worker.
type ProgressSink interface {
	// RunStart reports the run shape before the first sample is claimed.
	RunStart(total, workers int)
	// SampleDone reports one finished sample (failed samples included).
	SampleDone(failed bool)
	// RunEnd reports run completion (including aborted runs).
	RunEnd()
}

// progressBox wraps the sink so atomic.Value accepts changing concrete
// types (including a nil sink to detach).
type progressBox struct{ sink ProgressSink }

var progress atomic.Value // progressBox

// SetProgress attaches a process-wide progress sink picked up by the next
// run (each run reads it once at start). Pass nil to detach.
func SetProgress(s ProgressSink) { progress.Store(progressBox{sink: s}) }

// currentProgress returns the attached sink, or nil.
func currentProgress() ProgressSink {
	if b, ok := progress.Load().(progressBox); ok {
		return b.sink
	}
	return nil
}
