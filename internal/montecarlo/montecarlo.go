// Package montecarlo provides the deterministic, parallel Monte Carlo
// driver used by every statistical experiment in the repository. Each
// sample gets its own PRNG seeded by a splitmix64 hash of (seed, index), so
// results are bit-reproducible regardless of worker count or scheduling.
//
// Failure handling is policy-driven: FailFast (the default) aborts the run
// on the lowest failing sample index, while SkipAndRecord isolates
// non-convergent, NaN-producing, or even panicking samples — the far-tail
// draws a variability study most needs to survive — records them in a
// RunReport, and lets the rest of the population complete bit-identically.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
)

// splitmix64 advances and hashes a 64-bit state; used to derive independent
// per-sample seeds from (seed, index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleRNG returns the deterministic PRNG for sample idx of a run seeded
// with seed.
func SampleRNG(seed int64, idx int) *rand.Rand {
	s := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx) + 1)
	return rand.New(rand.NewSource(int64(s)))
}

// FailurePolicy selects how sample failures are handled.
type FailurePolicy int

const (
	// FailFast aborts the run on the first failure; the error reported is
	// the one with the lowest sample index among the samples that ran.
	// This is the zero value, preserving the classic Map/MapPooled
	// contract.
	FailFast FailurePolicy = iota
	// SkipAndRecord isolates failing samples: their errors are recorded in
	// the RunReport, their output slots keep the zero value (drop them
	// with Compact), and the remaining samples complete unaffected.
	SkipAndRecord
)

// Policy bundles the failure policy with its parameters. The zero value is
// FailFast.
type Policy struct {
	OnFailure FailurePolicy
	// MaxFailFrac caps the tolerated failure fraction under SkipAndRecord:
	// once more than MaxFailFrac·n samples have failed, the run stops
	// claiming new samples and returns ErrTooManyFailures (a run that
	// broken signals a modeling or bench bug, not far-tail statistics).
	// <= 0 means no cap. Whether a given (seed, n) run trips is
	// deterministic and independent of worker count, although which
	// samples were still attempted after the trip is not.
	MaxFailFrac float64
}

// SkipUpTo returns a SkipAndRecord policy capped at the given failure
// fraction.
func SkipUpTo(frac float64) Policy {
	return Policy{OnFailure: SkipAndRecord, MaxFailFrac: frac}
}

// ErrTooManyFailures reports a SkipAndRecord run whose failure fraction
// exceeded Policy.MaxFailFrac.
var ErrTooManyFailures = errors.New("montecarlo: failure fraction exceeds policy cap")

// PanicError wraps a recovered per-sample panic. The worker that caught it
// survives and keeps claiming samples; the panic is reported like any other
// sample error, with the stack preserved for debugging.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the recovered panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("montecarlo: sample panicked: %v", e.Value)
}

// SampleFailure is one failed sample of a run: its index and the error
// (possibly a *PanicError or, from the spice layer, a *ConvergenceError).
type SampleFailure struct {
	Idx int
	Err error
}

// RunReport is the health record of one Monte Carlo run: how many samples
// were attempted, how many succeeded, which failed and why, and how much
// solver rescue work (per ladder stage) the run needed. For a completed
// (non-aborted) run every field is invariant under worker count.
type RunReport struct {
	Attempted int // samples that started running
	Succeeded int // samples that returned a result
	Failed    int // samples that returned an error (including panics)
	Panics    int // failed samples whose error was a recovered panic

	// CapTripped marks a SkipAndRecord run aborted by MaxFailFrac.
	CapTripped bool

	// Cancelled marks a run stopped by context cancellation; the result
	// slice holds partial results (completed samples are bit-identical to
	// an uninterrupted run's).
	Cancelled bool

	// Interrupted counts samples that were in flight when the context was
	// cancelled. They are recorded nowhere else — not Attempted, not Failed
	// — because a resumed run re-executes them with identical outcomes.
	Interrupted int

	// Failures lists every failed sample in ascending index order.
	Failures []SampleFailure

	// Rescued sums the per-ladder-stage rescue counters reported by the
	// per-worker states (see RescueReporter), keyed by stage name.
	Rescued map[string]int64
}

// RescueReporter is implemented by pooled worker states (circuit bench
// templates) that track solver rescue-ladder counters; MapPooledReport sums
// them across workers into RunReport.Rescued after the run drains.
type RescueReporter interface {
	RescueCounts() map[string]int64
}

// Merge accumulates another run's report into r (used by experiments that
// aggregate several Monte Carlo runs into one figure).
func (r *RunReport) Merge(o RunReport) {
	r.Attempted += o.Attempted
	r.Succeeded += o.Succeeded
	r.Failed += o.Failed
	r.Panics += o.Panics
	r.CapTripped = r.CapTripped || o.CapTripped
	r.Cancelled = r.Cancelled || o.Cancelled
	r.Interrupted += o.Interrupted
	r.Failures = append(r.Failures, o.Failures...)
	if len(o.Rescued) > 0 {
		if r.Rescued == nil {
			r.Rescued = make(map[string]int64, len(o.Rescued))
		}
		for k, v := range o.Rescued {
			r.Rescued[k] += v
		}
	}
}

// Clean reports a run with no failures and no rescue work.
func (r RunReport) Clean() bool {
	return r.Failed == 0 && !r.CapTripped && len(r.Rescued) == 0
}

// FailFrac returns the failed fraction of attempted samples (0 for an
// empty run).
func (r RunReport) FailFrac() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Attempted)
}

// String renders a one-line health summary, e.g.
// "attempted 1000, succeeded 999, failed 1 (1 panic), rescued[dc-gmin]=3".
func (r RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attempted %d, succeeded %d, failed %d", r.Attempted, r.Succeeded, r.Failed)
	if r.Panics > 0 {
		fmt.Fprintf(&b, " (%d panics)", r.Panics)
	}
	if r.CapTripped {
		b.WriteString(", failure cap tripped")
	}
	if r.Cancelled {
		fmt.Fprintf(&b, ", cancelled (%d in flight)", r.Interrupted)
	}
	if len(r.Rescued) > 0 {
		keys := make([]string, 0, len(r.Rescued))
		for k := range r.Rescued {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ", rescued[%s]=%d", k, r.Rescued[k])
		}
	}
	return b.String()
}

// Map runs fn for samples 0..n-1 on a bounded worker pool and returns the
// results in sample order. Work is claimed from an atomic counter (no O(n)
// queue fill before work starts); each sample's PRNG depends only on (seed,
// idx), so results are bit-identical for any worker count. The first error
// (by sample index) aborts the run.
func Map[T any](n int, seed int64, workers int, fn func(idx int, rng *rand.Rand) (T, error)) ([]T, error) {
	out, _, err := MapReport(n, seed, workers, Policy{}, fn)
	return out, err
}

// MapReport is Map with an explicit failure policy and a RunReport.
func MapReport[T any](n int, seed int64, workers int, pol Policy,
	fn func(idx int, rng *rand.Rand) (T, error)) ([]T, RunReport, error) {
	return MapPooledReport(n, seed, workers, pol,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idx int, rng *rand.Rand) (T, error) { return fn(idx, rng) })
}

// MapPooled is Map with per-worker pooled state: newState builds one S per
// worker (a circuit template with preallocated solver scratch, say), and fn
// re-stamps and evaluates sample idx against its worker's state. Sample
// idx's PRNG is derived from (seed, idx) alone and the per-worker state must
// not leak sample-dependent results across samples, so output stays
// bit-identical for any worker count and scheduling. A newState error aborts
// before any samples run on that worker; sample errors are reported for the
// lowest failing index.
func MapPooled[S, T any](n int, seed int64, workers int,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ([]T, error) {
	out, _, err := MapPooledReport(n, seed, workers, Policy{}, newState, fn)
	return out, err
}

// MapPooledReport is MapPooled with an explicit failure policy and a
// RunReport. Each sample runs under panic recovery: a panicking sample is
// converted into a per-sample *PanicError without killing the process, the
// worker, or the pool, and the worker's pooled state stays usable for the
// next sample. Under SkipAndRecord the returned slice keeps the zero value
// at failed indices (drop them with Compact); under FailFast (or a tripped
// failure cap) the slice is nil and the error describes the failure, with
// the RunReport still populated for diagnosis.
func MapPooledReport[S, T any](n int, seed int64, workers int, pol Policy,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ([]T, RunReport, error) {
	return MapPooledReportCtx(context.Background(), n, seed, workers,
		RunOpts{Policy: pol}, newState, fn)
}

// safeState builds one worker state under panic recovery.
func safeState[S any](newState func(worker int) (S, error), w int) (st S, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return newState(w)
}

// safeSample evaluates one sample under panic recovery.
func safeSample[S, T any](fn func(st S, idx int, rng *rand.Rand) (T, error),
	st S, idx int, rng *rand.Rand) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(st, idx, rng)
}

// Compact returns the successful samples of out in sample order, dropping
// the entries the report records as failed (whose slots hold zero values
// under SkipAndRecord). When nothing failed, out is returned unchanged.
func Compact[T any](out []T, rep RunReport) []T {
	if len(rep.Failures) == 0 {
		return out
	}
	bad := make(map[int]bool, len(rep.Failures))
	for _, f := range rep.Failures {
		bad[f.Idx] = true
	}
	kept := make([]T, 0, len(out)-len(bad))
	for i, v := range out {
		if !bad[i] {
			kept = append(kept, v)
		}
	}
	return kept
}

// Scalars runs a scalar-valued Monte Carlo and returns the sample vector.
func Scalars(n int, seed int64, workers int, fn func(idx int, rng *rand.Rand) (float64, error)) ([]float64, error) {
	return Map(n, seed, workers, fn)
}

// Column extracts component k from a slice of fixed-length sample vectors.
func Column(samples [][]float64, k int) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s[k]
	}
	return out
}
