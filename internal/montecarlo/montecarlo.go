// Package montecarlo provides the deterministic, parallel Monte Carlo
// driver used by every statistical experiment in the repository. Each
// sample gets its own PRNG seeded by a splitmix64 hash of (seed, index), so
// results are bit-reproducible regardless of worker count or scheduling.
package montecarlo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// splitmix64 advances and hashes a 64-bit state; used to derive independent
// per-sample seeds from (seed, index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleRNG returns the deterministic PRNG for sample idx of a run seeded
// with seed.
func SampleRNG(seed int64, idx int) *rand.Rand {
	s := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx) + 1)
	return rand.New(rand.NewSource(int64(s)))
}

// Map runs fn for samples 0..n-1 on a bounded worker pool and returns the
// results in sample order. The first error aborts the run.
func Map[T any](n int, seed int64, workers int, fn func(idx int, rng *rand.Rand) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				res, err := fn(idx, SampleRNG(seed, idx))
				out[idx] = res
				errs[idx] = err
			}
		}()
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("montecarlo: sample %d: %w", idx, err)
		}
	}
	return out, nil
}

// Scalars runs a scalar-valued Monte Carlo and returns the sample vector.
func Scalars(n int, seed int64, workers int, fn func(idx int, rng *rand.Rand) (float64, error)) ([]float64, error) {
	return Map(n, seed, workers, fn)
}

// Column extracts component k from a slice of fixed-length sample vectors.
func Column(samples [][]float64, k int) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s[k]
	}
	return out
}
