// Package montecarlo provides the deterministic, parallel Monte Carlo
// driver used by every statistical experiment in the repository. Each
// sample gets its own PRNG seeded by a splitmix64 hash of (seed, index), so
// results are bit-reproducible regardless of worker count or scheduling.
package montecarlo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// splitmix64 advances and hashes a 64-bit state; used to derive independent
// per-sample seeds from (seed, index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleRNG returns the deterministic PRNG for sample idx of a run seeded
// with seed.
func SampleRNG(seed int64, idx int) *rand.Rand {
	s := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx) + 1)
	return rand.New(rand.NewSource(int64(s)))
}

// Map runs fn for samples 0..n-1 on a bounded worker pool and returns the
// results in sample order. Work is claimed from an atomic counter (no O(n)
// queue fill before work starts); each sample's PRNG depends only on (seed,
// idx), so results are bit-identical for any worker count. The first error
// (by sample index) aborts the run.
func Map[T any](n int, seed int64, workers int, fn func(idx int, rng *rand.Rand) (T, error)) ([]T, error) {
	return MapPooled(n, seed, workers,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idx int, rng *rand.Rand) (T, error) { return fn(idx, rng) })
}

// MapPooled is Map with per-worker pooled state: newState builds one S per
// worker (a circuit template with preallocated solver scratch, say), and fn
// re-stamps and evaluates sample idx against its worker's state. Sample
// idx's PRNG is derived from (seed, idx) alone and the per-worker state must
// not leak sample-dependent results across samples, so output stays
// bit-identical for any worker count and scheduling. A newState error aborts
// before any samples run on that worker; sample errors are reported for the
// lowest failing index.
func MapPooled[S, T any](n int, seed int64, workers int,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	stateErrs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := newState(w)
			if err != nil {
				stateErrs[w] = err
				return
			}
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				res, err := fn(st, idx, SampleRNG(seed, idx))
				out[idx] = res
				errs[idx] = err
			}
		}(w)
	}
	wg.Wait()
	for w, err := range stateErrs {
		if err != nil {
			return nil, fmt.Errorf("montecarlo: worker %d state: %w", w, err)
		}
	}
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("montecarlo: sample %d: %w", idx, err)
		}
	}
	return out, nil
}

// Scalars runs a scalar-valued Monte Carlo and returns the sample vector.
func Scalars(n int, seed int64, workers int, fn func(idx int, rng *rand.Rand) (float64, error)) ([]float64, error) {
	return Map(n, seed, workers, fn)
}

// Column extracts component k from a slice of fixed-length sample vectors.
func Column(samples [][]float64, k int) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s[k]
	}
	return out
}
