package montecarlo

// Deterministic checkpoint/resume for Monte Carlo runs. A Checkpoint[T]
// records every completed sample (value or failure, plus its per-sample
// rescue-counter delta) and periodically flushes the whole state to disk as
// JSON via an atomic temp-file + rename, so a killed run leaves either the
// previous consistent checkpoint or the new one — never a torn file.
//
// Resume is free of replay logic: because sample idx's outcome depends only
// on (seed, idx), a resumed run simply skips the recorded indices
// (CheckpointSink.Completed) and re-runs the rest. The checkpoint carries a
// caller-supplied config hash (seed, n, model parameters, …) and refuses to
// load under a different hash, so a resume can never silently mix
// populations. Results() and Report() overlay restored and freshly-run
// outcomes into the full-run view, bit-identical to an uninterrupted run.

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"vstat/internal/lifecycle"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// RecordedFailure is the persisted form of one failed sample — the schema
// shared by the checkpoint file and the shard result envelope
// (internal/shard): index, message, and panic/budget provenance flags. The
// original typed error is not round-trippable through JSON; a restored
// failure becomes an opaque error carrying the original message.
type RecordedFailure struct {
	Idx    int    `json:"idx"`
	Msg    string `json:"msg"`
	Panic  bool   `json:"panic,omitempty"`
	Budget bool   `json:"budget,omitempty"`
}

// NewRecordedFailure classifies err into its persisted record.
func NewRecordedFailure(idx int, err error) RecordedFailure {
	f := RecordedFailure{Idx: idx, Msg: err.Error()}
	var pe *PanicError
	if errors.As(err, &pe) {
		f.Panic = true
	}
	if lifecycle.IsBudget(err) {
		f.Budget = true
	}
	return f
}

// Err reconstructs the failure as an opaque error carrying the original
// message (provenance stays on the record's flags).
func (f RecordedFailure) Err() error { return &restoredError{msg: f.Msg} }

// ckFile is the JSON document: version and config hash for safety, the
// completed bitmap, the full-length result array (Done decides which
// entries are valid), failures, and the per-stage rescue totals of the
// completed samples.
type ckFile[T any] struct {
	Version    int               `json:"version"`
	ConfigHash string            `json:"config_hash"`
	N          int               `json:"n"`
	Done       []bool            `json:"done"`
	Results    []T               `json:"results"`
	Failures   []RecordedFailure `json:"failures,omitempty"`
	Rescued    map[string]int64  `json:"rescued,omitempty"`
}

// restoredError is a failure loaded from a checkpoint: the message of the
// original error, no longer typed.
type restoredError struct{ msg string }

func (e *restoredError) Error() string { return e.msg }

// Checkpoint is a CheckpointSink backed by an atomically-replaced JSON
// file. T must round-trip through encoding/json (the experiment drivers
// checkpoint float64s and small structs/arrays). Safe for concurrent use.
type Checkpoint[T any] struct {
	mu         sync.Mutex
	path       string
	cfgHash    string
	n          int
	flushEvery int
	sinceFlush int
	restored   int // samples loaded from disk at open

	done     []bool
	results  []T
	failures map[int]RecordedFailure
	rescued  map[string]int64
}

// ConfigHash hashes an ordered list of run-identity values (seed, n, model
// name, scale, …) into the string a checkpoint is keyed by. Any change to
// any part yields a different hash and a rejected resume.
func ConfigHash(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x00", p)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// OpenCheckpoint opens (or creates) the checkpoint at path for a run of n
// samples under the given config hash. An existing file is loaded and its
// completed samples become skippable; a missing file starts fresh (so
// "resume" on a first run just runs everything). A file whose version,
// config hash, or n disagrees is rejected with an error — never silently
// overwritten. flushEvery bounds how many new records may accumulate
// before an automatic flush (<= 0 defaults to 64).
func OpenCheckpoint[T any](path, cfgHash string, n, flushEvery int) (*Checkpoint[T], error) {
	if flushEvery <= 0 {
		flushEvery = 64
	}
	ck := &Checkpoint[T]{
		path:       path,
		cfgHash:    cfgHash,
		n:          n,
		flushEvery: flushEvery,
		done:       make([]bool, n),
		results:    make([]T, n),
		failures:   make(map[int]RecordedFailure),
		rescued:    make(map[string]int64),
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	var doc ckFile[T]
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("checkpoint: parse %s: %w", path, err)
	}
	if doc.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint: %s has version %d, want %d", path, doc.Version, checkpointVersion)
	}
	if doc.ConfigHash != cfgHash {
		return nil, fmt.Errorf("checkpoint: %s was written by a different run configuration (hash %.12s…, want %.12s…)",
			path, doc.ConfigHash, cfgHash)
	}
	if doc.N != n || len(doc.Done) != n || len(doc.Results) != n {
		return nil, fmt.Errorf("checkpoint: %s holds %d samples, want %d", path, doc.N, n)
	}
	copy(ck.done, doc.Done)
	copy(ck.results, doc.Results)
	for _, f := range doc.Failures {
		if f.Idx >= 0 && f.Idx < n {
			ck.failures[f.Idx] = f
		}
	}
	for k, v := range doc.Rescued {
		ck.rescued[k] = v
	}
	for _, d := range ck.done {
		if d {
			ck.restored++
		}
	}
	return ck, nil
}

// Completed reports whether sample idx was already recorded.
func (c *Checkpoint[T]) Completed(idx int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[idx]
}

// Restored reports how many completed samples the open loaded from disk.
func (c *Checkpoint[T]) Restored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restored
}

// Record stores one completed sample and flushes when the unflushed count
// reaches the flush interval. A failed sample's value is ignored; its error
// message (with panic/budget provenance) is persisted instead.
func (c *Checkpoint[T]) Record(idx int, value any, rescued map[string]int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx < 0 || idx >= c.n || c.done[idx] {
		return
	}
	c.done[idx] = true
	if err == nil {
		if v, ok := value.(T); ok {
			c.results[idx] = v
		}
	} else {
		c.failures[idx] = NewRecordedFailure(idx, err)
	}
	for k, v := range rescued {
		c.rescued[k] += v
	}
	c.sinceFlush++
	if c.sinceFlush >= c.flushEvery {
		c.flushLocked() // best-effort; Flush surfaces errors at run end
	}
}

// Flush writes the current state to disk (atomic temp-file + rename).
func (c *Checkpoint[T]) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Checkpoint[T]) flushLocked() error {
	doc := ckFile[T]{
		Version:    checkpointVersion,
		ConfigHash: c.cfgHash,
		N:          c.n,
		Done:       c.done,
		Results:    c.results,
		Rescued:    c.rescued,
	}
	for _, f := range c.failures {
		doc.Failures = append(doc.Failures, f)
	}
	sort.Slice(doc.Failures, func(i, j int) bool { return doc.Failures[i].Idx < doc.Failures[j].Idx })
	raw, err := json.Marshal(&doc)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".ck-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	// Durability needs both syncs: the file's data must reach the disk
	// before the rename makes it visible, and the directory entry created
	// by the rename must itself be synced — on journaling filesystems a
	// crash right after an unsynced rename can leave the directory pointing
	// at nothing, losing the snapshot the rename claimed to publish.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	c.sinceFlush = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Results returns the full-length result vector overlaying restored and
// freshly-recorded samples — the authoritative run output once every index
// is done. Failed indices hold zero values (drop them with Compact against
// Report()).
func (c *Checkpoint[T]) Results() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]T, c.n)
	copy(out, c.results)
	return out
}

// Pending returns how many samples are not yet recorded.
func (c *Checkpoint[T]) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := 0
	for _, d := range c.done {
		if !d {
			p++
		}
	}
	return p
}

// Report builds the full-run RunReport from every recorded sample —
// restored plus fresh — so an interrupted-and-resumed campaign reports
// exactly what one uninterrupted run would: same counts, same failure
// indices (messages for restored failures are the persisted strings), and
// the same per-stage Rescued totals (summed from per-sample deltas, which
// are scheduling-invariant).
func (c *Checkpoint[T]) Report() RunReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := RunReport{}
	for idx, d := range c.done {
		if !d {
			continue
		}
		rep.Attempted++
		if f, bad := c.failures[idx]; bad {
			rep.Failed++
			if f.Panic {
				rep.Panics++
			}
			rep.Failures = append(rep.Failures, SampleFailure{Idx: idx, Err: f.Err()})
		} else {
			rep.Succeeded++
		}
	}
	if len(c.rescued) > 0 {
		rep.Rescued = make(map[string]int64, len(c.rescued))
		for k, v := range c.rescued {
			rep.Rescued[k] = v
		}
	}
	return rep
}
