package montecarlo

// Context-aware Monte Carlo engine: the lifecycle layer of the driver.
// MapPooledReportCtx is the real engine — the classic MapPooledReport now
// delegates to it with context.Background() and no budget, which keeps
// every check on the disarmed fast path.
//
// Three lifecycle mechanisms compose here:
//
//   - Cancellation: workers re-check ctx at every claim, so a cancelled run
//     stops claiming, drains the in-flight samples, and returns partial
//     results. A sample's outcome depends only on (seed, idx), so the
//     completed subset is bit-identical to the same indices of an
//     uninterrupted run at any worker count.
//
//   - Budget: each sample is armed on its worker state (SampleArmer) before
//     fn runs; the solver's iteration-boundary checks turn an overrun into a
//     *lifecycle.BudgetError, which is an ordinary per-sample failure under
//     SkipAndRecord.
//
//   - Hang watchdog: a cooperative deadline cannot catch a solve wedged
//     inside a model evaluation. When Budget.Wall is set, the coordinator
//     scans in-flight samples and abandons any that run past Wall+HangGrace:
//     a commit CAS (0 pending → 1 committed by the worker, 0 → 2 abandoned
//     by the watchdog) decides exactly one owner for each sample's result
//     slot. The abandoned goroutine leaks by design until its blocking call
//     returns — it detects the lost CAS, touches nothing shared, and exits
//     silently — while a replacement worker keeps the pool at strength.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vstat/internal/lifecycle"
	"vstat/internal/obs"
	"vstat/internal/obs/trace"
)

// SampleArmer is implemented by pooled worker states whose circuits enforce
// per-sample budgets (see spice.Circuit.ArmSample). The engine arms each
// sample just before fn runs; states without the method run unarmed.
type SampleArmer interface {
	ArmSample(ctx context.Context, b lifecycle.Budget)
}

// TraceAttacher is implemented by worker states that can route solver
// phase spans to a sample tracer (pooled circuit benches forward to their
// obs.Scope). The engine attaches each worker's tracer once at startup;
// states without the method still get sample-level spans and diagnostics,
// just no phase detail.
type TraceAttacher interface {
	AttachTracer(t obs.Tracer)
}

// WorkReporter exposes a state's cumulative solver work — Newton
// iterations and rescue stages — as two integers, cheap enough to snapshot
// around every sample. The flight recorder ranks samples on the deltas;
// both counters must be pure functions of (seed, idx) so the worst-K set
// is identical at any worker count (see spice.SolverStats.Work).
type WorkReporter interface {
	SolverWork() (iters, rescues int64)
}

// CheckpointSink receives per-sample completions during a run and answers
// which samples an earlier run already completed. *Checkpoint[T] is the
// concrete implementation; the interface keeps the engine non-generic over
// the checkpoint. Implementations must be safe for concurrent use.
type CheckpointSink interface {
	// Completed reports whether sample idx was already recorded (by a
	// previous run being resumed); the engine skips it.
	Completed(idx int) bool
	// Record stores sample idx's outcome: its value (nil when err != nil),
	// the rescue-counter delta attributable to just this sample, and its
	// error if it failed.
	Record(idx int, value any, rescued map[string]int64, err error)
}

// RunOpts bundles the lifecycle knobs of a context-aware run. The zero
// value reproduces the classic engine exactly.
type RunOpts struct {
	// Policy is the failure policy (FailFast / SkipAndRecord + cap).
	Policy Policy
	// Budget bounds each sample's solver work (see lifecycle.Budget); armed
	// on states implementing SampleArmer. Budget.Wall also activates the
	// hang watchdog.
	Budget lifecycle.Budget
	// HangGrace is how far past Budget.Wall an in-flight sample may run
	// before the watchdog abandons it; <= 0 defaults to Budget.Wall. Only
	// meaningful when Budget.Wall > 0.
	HangGrace time.Duration
	// Checkpoint, when non-nil, records completions and marks already-done
	// samples to skip (resume).
	Checkpoint CheckpointSink
	// Offset shifts the run's global sample identity: the engine still claims
	// local indices 0..n-1, but sample i runs as global index Offset+i — its
	// RNG is SampleRNG(seed, Offset+i), fn receives the global index, and
	// RunReport failures carry global indices. An index-range shard
	// [Offset, Offset+n) therefore computes exactly the samples (and failure
	// records) a full run computes for those indices, which is what makes
	// sharded results mergeable bit-identically (internal/shard). The result
	// slice and any CheckpointSink stay local (indices 0..n-1).
	Offset int
	// Trace, when non-nil, arms the distributed-tracing flight recorder:
	// each worker gets a trace.SampleTracer (attached to states
	// implementing TraceAttacher), every sample is bracketed by a span
	// carrying its fixed-size diagnostic, and the K worst samples keep
	// full span detail (merged deterministically across workers). Nil
	// keeps the hot path at one pointer check per sample and zero
	// allocations.
	Trace *trace.MC
}

// classifyVerdict maps a sample outcome onto the flight-recorder verdict
// vocabulary.
func classifyVerdict(err error) string {
	if err == nil {
		return trace.VerdictOK
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return trace.VerdictPanic
	}
	var be *lifecycle.BudgetError
	if errors.As(err, &be) {
		switch be.Kind {
		case lifecycle.OverIters:
			return trace.VerdictBudgetIters
		case lifecycle.OverHang:
			return trace.VerdictBudgetHang
		default:
			return trace.VerdictBudgetWall
		}
	}
	return trace.VerdictFailed
}

// MapCtx is Map with a context: a cancelled ctx stops new claims, drains
// in-flight samples, and returns the partial results with an error wrapping
// ctx.Err().
func MapCtx[T any](ctx context.Context, n int, seed int64, workers int,
	fn func(idx int, rng *rand.Rand) (T, error)) ([]T, error) {
	out, _, err := MapReportCtx(ctx, n, seed, workers, RunOpts{}, fn)
	return out, err
}

// MapReportCtx is MapReport with a context and lifecycle options.
func MapReportCtx[T any](ctx context.Context, n int, seed int64, workers int, opts RunOpts,
	fn func(idx int, rng *rand.Rand) (T, error)) ([]T, RunReport, error) {
	return MapPooledReportCtx(ctx, n, seed, workers, opts,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idx int, rng *rand.Rand) (T, error) { return fn(idx, rng) })
}

// workerSlot is one worker's watchdog-visible in-flight sample: the claimed
// index (-1 when idle) and its start time in nanoseconds since the run
// base. The worker stores start before idx, so a coordinator that observes
// idx also observes its start. gone is touched only by the coordinator.
type workerSlot struct {
	idx   atomic.Int64
	start atomic.Int64
	gone  bool
}

// MapPooledReportCtx is MapPooledReport with a context, per-sample budgets,
// a hang watchdog, and optional checkpointing — the engine every other Map
// variant delegates to. Semantics beyond MapPooledReport:
//
//   - On cancellation the run returns its partial results (failed and
//     never-claimed slots hold zero values), RunReport.Cancelled is set,
//     samples that were in flight when the context died are counted in
//     RunReport.Interrupted (not Attempted/Failed — they will produce
//     identical results when re-run), and the error wraps ctx.Err().
//   - A sample exceeding its budget fails with *lifecycle.BudgetError and
//     follows the failure policy like any other sample error.
//   - With a checkpoint, already-completed samples are skipped and every
//     completion is recorded; the checkpoint's own Results/Report overlay
//     restored and new outcomes into the full-run view.
func MapPooledReportCtx[S, T any](ctx context.Context, n int, seed int64, workers int, opts RunOpts,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ([]T, RunReport, error) {
	rep := RunReport{}
	if n <= 0 {
		return nil, rep, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	pol := opts.Policy
	ck := opts.Checkpoint
	off := opts.Offset

	// failLimit is the largest failure count that does NOT abort the run
	// (see MapPooledReport). Cancellation-interrupted samples never count
	// against it.
	failLimit := int64(n)
	switch {
	case pol.OnFailure == FailFast:
		failLimit = 0
	case pol.MaxFailFrac > 0:
		failLimit = int64(pol.MaxFailFrac * float64(n))
	}

	ps := currentProgress()
	if ps != nil {
		ps.RunStart(n, workers)
		defer ps.RunEnd()
	}

	out := make([]T, n)
	errs := make([]error, n)
	ran := make([]bool, n)
	// commit decides the single owner of each sample's result slot:
	// 0 pending, 1 committed by its worker, 2 abandoned by the watchdog.
	commit := make([]atomic.Int32, n)
	var next, failed atomic.Int64
	var abort atomic.Bool
	base := time.Now()

	// Worker states and state errors are registered at worker exit (never
	// by abandoned workers), so post-run reads race nothing.
	var mu sync.Mutex
	var states []S
	var stateErr error

	exitCh := make(chan struct{})
	// runWorker returns true when the worker was abandoned by the watchdog
	// (lost a commit CAS): it must then vanish without signalling exit —
	// the coordinator already accounted for it.
	runWorker := func(w int, sl *workerSlot) bool {
		st, err := safeState(newState, w)
		if err != nil {
			mu.Lock()
			if stateErr == nil {
				stateErr = fmt.Errorf("montecarlo: worker %d state: %w", w, err)
			}
			mu.Unlock()
			abort.Store(true)
			return false
		}
		armer, armed := any(st).(SampleArmer)
		reporter, reports := any(st).(RescueReporter)
		wt := opts.Trace.NewWorker(w)
		var workRep WorkReporter
		if wt != nil {
			if ta, ok := any(st).(TraceAttacher); ok {
				ta.AttachTracer(wt)
			}
			workRep, _ = any(st).(WorkReporter)
		}
		for !abort.Load() && ctx.Err() == nil {
			idx := int(next.Add(1)) - 1
			if idx >= n {
				break
			}
			if ck != nil && ck.Completed(idx) {
				continue
			}
			sl.start.Store(int64(time.Since(base)))
			sl.idx.Store(int64(idx))
			var prevCounts map[string]int64
			if ck != nil && reports {
				prevCounts = reporter.RescueCounts()
			}
			if armed {
				armer.ArmSample(ctx, opts.Budget)
			}
			var preIters, preRescues int64
			if wt != nil {
				if workRep != nil {
					preIters, preRescues = workRep.SolverWork()
				}
				wt.BeginSample(off + idx)
			}
			res, serr := safeSample(fn, st, off+idx, SampleRNG(seed, off+idx))
			sl.idx.Store(-1)
			if !commit[idx].CompareAndSwap(0, 1) {
				// The watchdog gave up on this sample (and on us): its error
				// slot is already written, a replacement worker is running.
				// Exit without touching anything shared (the tracer is
				// worker-local and never collected from an abandoned
				// worker, so dropping the sample record here races nothing).
				return true
			}
			if wt != nil {
				d := trace.SampleDiag{Verdict: classifyVerdict(serr)}
				if workRep != nil {
					iters, rescues := workRep.SolverWork()
					d.Iters, d.Rescues = iters-preIters, rescues-preRescues
				}
				if serr != nil {
					d.Err = serr.Error()
					var ne interface{ WorstNode() string }
					if errors.As(serr, &ne) {
						d.WorstNode = ne.WorstNode()
					}
				}
				wt.EndSample(d)
			}
			ran[idx] = true
			out[idx], errs[idx] = res, serr
			if lifecycle.IsCancellation(serr) {
				// In flight when the run died: recorded nowhere, re-run on
				// resume, excluded from failure accounting and progress.
				continue
			}
			if ck != nil {
				var v any
				if serr == nil {
					v = res
				}
				ck.Record(idx, v, rescueDelta(reporter, reports, prevCounts), serr)
			}
			if ps != nil {
				ps.SampleDone(serr != nil)
			}
			if serr != nil && failed.Add(1) > failLimit {
				abort.Store(true)
			}
		}
		opts.Trace.FinishWorker(wt)
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
		return false
	}

	slots := make([]*workerSlot, 0, workers)
	spawn := func(w int) *workerSlot {
		sl := &workerSlot{}
		sl.idx.Store(-1)
		slots = append(slots, sl)
		go func() {
			if !runWorker(w, sl) {
				exitCh <- struct{}{}
			}
		}()
		return sl
	}
	for w := 0; w < workers; w++ {
		spawn(w)
	}
	spawned := workers

	// Coordinator: drain worker exits, and — when a wall budget arms the
	// watchdog — periodically scan in-flight samples for hangs. A nil tick
	// channel (no wall budget) blocks forever in select, reducing this to a
	// plain drain loop.
	var tickC <-chan time.Time
	var hangLimit time.Duration
	if opts.Budget.Wall > 0 {
		grace := opts.HangGrace
		if grace <= 0 {
			grace = opts.Budget.Wall
		}
		hangLimit = opts.Budget.Wall + grace
		tick := hangLimit / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		tickC = ticker.C
	}
	received, abandoned := 0, 0
	for received+abandoned < spawned {
		select {
		case <-exitCh:
			received++
		case now := <-tickC:
			nowNs := int64(now.Sub(base))
			for _, sl := range slots {
				if sl.gone {
					continue
				}
				idx := sl.idx.Load()
				if idx < 0 || nowNs-sl.start.Load() <= int64(hangLimit) {
					continue
				}
				if !commit[idx].CompareAndSwap(0, 2) {
					continue // just committed; the worker is fine
				}
				// Abandon: classify as a per-sample budget failure, spawn a
				// replacement so siblings don't inherit the dead worker's
				// share of the population.
				sl.gone = true
				abandoned++
				herr := &lifecycle.BudgetError{
					Kind:    lifecycle.OverHang,
					Elapsed: time.Duration(nowNs - sl.start.Load()),
					Wall:    opts.Budget.Wall,
				}
				ran[idx] = true
				errs[idx] = herr
				if ck != nil {
					ck.Record(int(idx), nil, nil, herr)
				}
				if ps != nil {
					ps.SampleDone(true)
				}
				if failed.Add(1) > failLimit {
					abort.Store(true)
				}
				if !abort.Load() && ctx.Err() == nil {
					spawn(spawned)
					spawned++
				}
			}
		}
	}

	if stateErr != nil {
		return nil, rep, stateErr
	}

	for idx := range errs {
		if !ran[idx] {
			continue
		}
		err := errs[idx]
		if err != nil && lifecycle.IsCancellation(err) {
			rep.Interrupted++
			continue
		}
		rep.Attempted++
		switch {
		case err == nil:
			rep.Succeeded++
		default:
			rep.Failed++
			var pe *PanicError
			if errors.As(err, &pe) {
				rep.Panics++
			}
			rep.Failures = append(rep.Failures, SampleFailure{Idx: off + idx, Err: err})
		}
	}
	mu.Lock()
	for _, st := range states {
		if rr, ok := any(st).(RescueReporter); ok {
			for k, v := range rr.RescueCounts() {
				if v == 0 {
					continue
				}
				if rep.Rescued == nil {
					rep.Rescued = make(map[string]int64)
				}
				rep.Rescued[k] += v
			}
		}
	}
	mu.Unlock()

	if ctx.Err() != nil {
		rep.Cancelled = true
		return out, rep, fmt.Errorf("montecarlo: run cancelled after %d completed samples: %w",
			rep.Succeeded, ctx.Err())
	}
	if int64(rep.Failed) > failLimit {
		if pol.OnFailure == FailFast {
			f := rep.Failures[0]
			return nil, rep, fmt.Errorf("montecarlo: sample %d: %w", f.Idx, f.Err)
		}
		rep.CapTripped = true
		return nil, rep, fmt.Errorf("montecarlo: %d of %d attempted samples failed (cap %g): %w",
			rep.Failed, rep.Attempted, pol.MaxFailFrac, ErrTooManyFailures)
	}
	return out, rep, nil
}

// rescueDelta returns the rescue counters accumulated by just the sample
// that ran between the prev snapshot and now, keyed by stage (nil when the
// state doesn't report).
func rescueDelta(rr RescueReporter, ok bool, prev map[string]int64) map[string]int64 {
	if !ok {
		return nil
	}
	cur := rr.RescueCounts()
	var d map[string]int64
	for k, v := range cur {
		if dv := v - prev[k]; dv != 0 {
			if d == nil {
				d = make(map[string]int64, len(cur))
			}
			d[k] = dv
		}
	}
	return d
}
