package montecarlo

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// countingSink records the progress callbacks it receives.
type countingSink struct {
	started, ended     atomic.Int64
	done, failed       atomic.Int64
	total, workerCount atomic.Int64
}

func (s *countingSink) RunStart(total, workers int) {
	s.started.Add(1)
	s.total.Store(int64(total))
	s.workerCount.Store(int64(workers))
}
func (s *countingSink) SampleDone(failed bool) {
	s.done.Add(1)
	if failed {
		s.failed.Add(1)
	}
}
func (s *countingSink) RunEnd() { s.ended.Add(1) }

func TestProgressSinkSeesEverySample(t *testing.T) {
	sink := &countingSink{}
	SetProgress(sink)
	defer SetProgress(nil)

	const n = 200
	_, rep, err := MapReport(n, 7, 4, SkipUpTo(0.5), func(idx int, _ *rand.Rand) (int, error) {
		if idx%10 == 0 {
			return 0, fmt.Errorf("boom %d", idx)
		}
		return idx, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.started.Load() != 1 || sink.ended.Load() != 1 {
		t.Fatalf("RunStart/RunEnd = %d/%d, want 1/1", sink.started.Load(), sink.ended.Load())
	}
	if got := sink.done.Load(); got != int64(rep.Attempted) {
		t.Fatalf("SampleDone ticks %d, attempted %d", got, rep.Attempted)
	}
	if got := sink.failed.Load(); got != int64(rep.Failed) {
		t.Fatalf("failed ticks %d, report says %d", got, rep.Failed)
	}
	if sink.total.Load() != n || sink.workerCount.Load() != 4 {
		t.Fatalf("run shape %d/%d, want %d/4", sink.total.Load(), sink.workerCount.Load(), n)
	}
}

func TestProgressSinkDetach(t *testing.T) {
	sink := &countingSink{}
	SetProgress(sink)
	SetProgress(nil)
	if _, err := Map(10, 1, 2, func(idx int, _ *rand.Rand) (int, error) { return idx, nil }); err != nil {
		t.Fatal(err)
	}
	if sink.started.Load() != 0 {
		t.Fatal("detached sink still received callbacks")
	}
}

// TestRunReportStringDeterministic locks the health line's rescue-stage
// rendering to sorted stage order: the same report must render identically
// on every call regardless of map iteration order.
func TestRunReportStringDeterministic(t *testing.T) {
	rep := RunReport{
		Attempted: 1000, Succeeded: 997, Failed: 3, Panics: 1,
		Rescued: map[string]int64{
			"tran-substep":     4,
			"dc-gmin":          2,
			"fast-fallback":    9,
			"nonfinite-reject": 1,
			"dc-pseudo-tran":   3,
			"tran-halve":       5,
			"dc-source":        6,
		},
	}
	want := "attempted 1000, succeeded 997, failed 3 (1 panics)" +
		", rescued[dc-gmin]=2, rescued[dc-pseudo-tran]=3, rescued[dc-source]=6" +
		", rescued[fast-fallback]=9, rescued[nonfinite-reject]=1" +
		", rescued[tran-halve]=5, rescued[tran-substep]=4"
	for i := 0; i < 50; i++ {
		if got := rep.String(); got != want {
			t.Fatalf("render %d differs:\ngot  %q\nwant %q", i, got, want)
		}
	}
}
