package montecarlo

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// adversarial mixes magnitudes spanning ~30 orders with sign cancellation —
// the values where naive and even compensated summation orders disagree,
// so only exact accumulation passes the shuffle tests below.
func adversarial(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		x := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(30)-15))
		v[i] = x
	}
	return v
}

func summaryOf(vals []float64) *StreamSummary {
	s := &StreamSummary{}
	for _, x := range vals {
		s.Add(x)
	}
	return s
}

// TestStreamSummaryExactKnownCases pins exactness on sums where one ulp of
// rounding error is the whole answer.
func TestStreamSummaryExactKnownCases(t *testing.T) {
	s := summaryOf([]float64{1e16, 1, -1e16})
	if got := s.Sum(); got != 1 {
		t.Fatalf("fsum{1e16, 1, -1e16} = %g, want 1", got)
	}
	s = summaryOf([]float64{1e100, 1, -1e100})
	if got := s.Sum(); got != 1 {
		t.Fatalf("fsum{1e100, 1, -1e100} = %g, want 1", got)
	}
	// Ten copies of 0.1 sum to exactly the correctly rounded 1.0, which
	// naive left-to-right addition misses.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 0.1
	}
	if got := summaryOf(vals).Sum(); got != 1.0 {
		t.Fatalf("fsum(10 × 0.1) = %.17g, want exactly 1", got)
	}
	// Constant stream: zero deviation, exactly.
	c := summaryOf([]float64{3.25, 3.25, 3.25, 3.25})
	if c.Std() != 0 {
		t.Fatalf("constant stream std = %g, want 0", c.Std())
	}
	if c.Mean() != 3.25 || c.Min() != 3.25 || c.Max() != 3.25 {
		t.Fatalf("constant stream mean/min/max %g/%g/%g", c.Mean(), c.Min(), c.Max())
	}
}

// TestStreamSummaryOrderInvariant is the determinism contract the shard
// coordinator's streaming merge relies on: any insertion order gives
// bit-identical Sum, Mean, and Std.
func TestStreamSummaryOrderInvariant(t *testing.T) {
	vals := adversarial(5000, 42)
	ref := summaryOf(vals)

	rev := make([]float64, len(vals))
	for i, x := range vals {
		rev[len(vals)-1-i] = x
	}
	orders := map[string][]float64{"reversed": rev}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 3; k++ {
		sh := append([]float64(nil), vals...)
		rng.Shuffle(len(sh), func(i, j int) { sh[i], sh[j] = sh[j], sh[i] })
		orders[string(rune('a'+k))+"-shuffled"] = sh
	}
	for name, order := range orders {
		s := summaryOf(order)
		if s.Sum() != ref.Sum() || s.Mean() != ref.Mean() || s.Std() != ref.Std() {
			t.Fatalf("%s: sum/mean/std %.17g/%.17g/%.17g, in-order %.17g/%.17g/%.17g",
				name, s.Sum(), s.Mean(), s.Std(), ref.Sum(), ref.Mean(), ref.Std())
		}
		if s.Count() != ref.Count() || s.Min() != ref.Min() || s.Max() != ref.Max() {
			t.Fatalf("%s: count/min/max diverged", name)
		}
	}
}

// TestStreamSummaryPartitionInvariant: splitting the stream into arbitrary
// chunks, summarizing each, and merging the partials in any order is
// bit-identical to one pass — the exact property that makes a sharded
// run's statistics independent of shard size and commit order.
func TestStreamSummaryPartitionInvariant(t *testing.T) {
	vals := adversarial(4096, 99)
	ref := summaryOf(vals)
	rng := rand.New(rand.NewSource(3))

	for trial := 0; trial < 4; trial++ {
		// Random partition into chunks of size 1..512.
		var parts []*StreamSummary
		for lo := 0; lo < len(vals); {
			hi := lo + 1 + rng.Intn(512)
			if hi > len(vals) {
				hi = len(vals)
			}
			parts = append(parts, summaryOf(vals[lo:hi]))
			lo = hi
		}
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		merged := &StreamSummary{}
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Sum() != ref.Sum() || merged.Mean() != ref.Mean() || merged.Std() != ref.Std() {
			t.Fatalf("trial %d (%d chunks): merged sum/mean/std %.17g/%.17g/%.17g, one-pass %.17g/%.17g/%.17g",
				trial, len(parts), merged.Sum(), merged.Mean(), merged.Std(), ref.Sum(), ref.Mean(), ref.Std())
		}
		if merged.Count() != ref.Count() || merged.Min() != ref.Min() || merged.Max() != ref.Max() {
			t.Fatalf("trial %d: count/min/max diverged", trial)
		}
	}
}

// TestStreamSummaryAgainstBigFloat cross-checks the rounded sum against a
// 256-bit reference on adversarial data.
func TestStreamSummaryAgainstBigFloat(t *testing.T) {
	vals := adversarial(2000, 1234)
	s := summaryOf(vals)
	want := bigSum(vals)
	if got := s.Sum(); got != want {
		t.Fatalf("sum = %.17g, 256-bit reference rounds to %.17g", got, want)
	}
	sq := make([]float64, len(vals))
	for i, x := range vals {
		sq[i] = x * x
	}
	// Std uses the exact Σx² the same machinery accumulates; spot-check
	// that total too.
	s2 := summaryOf(sq)
	if got, want := s2.Sum(), bigSum(sq); got != want {
		t.Fatalf("sum of squares = %.17g, 256-bit reference rounds to %.17g", got, want)
	}
}

func newBig(x float64) *big.Float { return new(big.Float).SetPrec(256).SetFloat64(x) }

func bigSum(vals []float64) float64 {
	acc := newBig(0)
	for _, x := range vals {
		acc.Add(acc, newBig(x))
	}
	f, _ := acc.Float64()
	return f
}

// TestStreamSummaryNonFinite: NaN/Inf inputs must poison Sum and Std
// deterministically rather than corrupting the exact expansion.
func TestStreamSummaryNonFinite(t *testing.T) {
	s := summaryOf([]float64{1, math.NaN(), 2})
	if !math.IsNaN(s.Sum()) || !math.IsNaN(s.Std()) {
		t.Fatalf("NaN input: sum %g std %g, want NaN/NaN", s.Sum(), s.Std())
	}
	inf := summaryOf([]float64{1, math.Inf(1), 2})
	if !math.IsInf(inf.Sum(), 1) {
		t.Fatalf("+Inf input: sum %g, want +Inf", inf.Sum())
	}
	both := summaryOf([]float64{math.Inf(1), math.Inf(-1)})
	if !math.IsNaN(both.Sum()) {
		t.Fatalf("±Inf inputs: sum %g, want NaN", both.Sum())
	}
	// Merge carries the poison across partitions.
	a := summaryOf([]float64{1, 2})
	a.Merge(summaryOf([]float64{math.NaN()}))
	if !math.IsNaN(a.Sum()) {
		t.Fatalf("merged NaN lost: sum %g", a.Sum())
	}
}

// TestStreamSummaryEmptyAndSingle covers the degenerate counts.
func TestStreamSummaryEmptyAndSingle(t *testing.T) {
	e := &StreamSummary{}
	if e.Count() != 0 || e.Sum() != 0 || e.Mean() != 0 || e.Std() != 0 {
		t.Fatalf("empty summary not zero: %d %g %g %g", e.Count(), e.Sum(), e.Mean(), e.Std())
	}
	one := summaryOf([]float64{-2.5})
	if one.Mean() != -2.5 || one.Std() != 0 || one.Min() != -2.5 || one.Max() != -2.5 {
		t.Fatalf("single-sample summary wrong: %g %g %g %g", one.Mean(), one.Std(), one.Min(), one.Max())
	}
	// Merging an empty summary is a no-op in both directions.
	a := summaryOf([]float64{1, 2, 3})
	want := a.Sum()
	a.Merge(&StreamSummary{})
	if a.Sum() != want || a.Count() != 3 {
		t.Fatal("merging empty changed the summary")
	}
	b := &StreamSummary{}
	b.Merge(a)
	if b.Sum() != want || b.Count() != 3 || b.Min() != 1 || b.Max() != 3 {
		t.Fatal("merge into empty lost state")
	}
}
