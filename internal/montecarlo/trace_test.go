package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"vstat/internal/lifecycle"
	"vstat/internal/obs"
	"vstat/internal/obs/trace"
)

// traceFakeState is a minimal worker state implementing the engine's
// optional tracing interfaces: cumulative solver-work counters whose
// per-sample deltas are pure functions of idx, and a tracer hook that
// records phase spans like a real bench's obs.Scope would.
type traceFakeState struct {
	iters, rescues int64
	tr             obs.Tracer
}

func (s *traceFakeState) SolverWork() (int64, int64) { return s.iters, s.rescues }
func (s *traceFakeState) AttachTracer(t obs.Tracer)  { s.tr = t }

// nodeErr is a sample failure carrying a worst-KCL-node diagnostic.
type nodeErr struct{ node string }

func (e *nodeErr) Error() string     { return "no convergence at " + e.node }
func (e *nodeErr) WorstNode() string { return e.node }

// traceRun executes one deterministic fake MC under the flight recorder and
// returns the sample values plus the merged worst-K records.
func traceRun(t *testing.T, n, workers, k int, traced bool) ([]float64, []trace.SampleRecord) {
	t.Helper()
	var opts RunOpts
	opts.Policy = SkipUpTo(1.0)
	var rec *trace.Recorder
	if traced {
		rec = trace.New("test", k)
		mcSpan := rec.Start("mc", trace.CatMCRun, 0)
		defer mcSpan.End()
		opts.Trace = trace.NewMC(rec, "mc", mcSpan.ID(), k)
	}
	out, _, err := MapPooledReportCtx(context.Background(), n, 20130318, workers, opts,
		func(int) (*traceFakeState, error) { return &traceFakeState{}, nil },
		func(st *traceFakeState, idx int, rng *rand.Rand) (float64, error) {
			// Deterministic per-sample "solver work": idx decides iterations,
			// rescues, and failure, so the worst-K ranking is reproducible at
			// any worker count.
			st.iters += int64(10 + idx%97)
			if idx%13 == 0 {
				st.rescues += int64(1 + idx%3)
			}
			if st.tr != nil {
				st.tr.BeginSpan("newton-solve", int64(idx))
				st.tr.EndSpan(int64(idx + 1))
			}
			switch {
			case idx == 41:
				panic("numerical explosion")
			case idx%17 == 0 && idx > 0:
				return 0, &nodeErr{node: fmt.Sprintf("n%d", idx%5)}
			}
			return rng.NormFloat64(), nil
		})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var recs []trace.SampleRecord
	if traced {
		recs = opts.Trace.Finish()
	}
	return out, recs
}

// TestTraceWorstKInvariantAcrossWorkers is the flight-recorder acceptance:
// the K worst samples — their indices, verdicts, work counters, error
// strings, and order — are identical at any worker count, and tracing
// leaves the sampled values bit-identical to an untraced run.
func TestTraceWorstKInvariantAcrossWorkers(t *testing.T) {
	const n, k = 200, 6
	plain, _ := traceRun(t, n, 4, k, false)

	var ref []trace.SampleDiag
	for _, workers := range []int{1, 4, 8} {
		out, recs := traceRun(t, n, workers, k, true)
		for i := range plain {
			if math.Float64bits(out[i]) != math.Float64bits(plain[i]) {
				t.Fatalf("workers=%d: tracing changed sample %d: %g vs %g", workers, i, out[i], plain[i])
			}
		}
		if len(recs) != k {
			t.Fatalf("workers=%d: kept %d records, want %d", workers, len(recs), k)
		}
		got := make([]trace.SampleDiag, len(recs))
		for i, r := range recs {
			got[i] = r.Diag
			got[i].WallNs = 0 // machine-dependent; excluded from the contract
			if len(r.Events) == 0 {
				t.Fatalf("workers=%d: worst sample %d kept no span detail", workers, r.Diag.Idx)
			}
		}
		if ref == nil {
			ref = got
			// Sanity on the ranking itself: the panic ranks worst, and
			// failures fill the top of the table.
			if got[0].Idx != 41 || got[0].Verdict != trace.VerdictPanic {
				t.Fatalf("worst record = %+v, want the panic at idx 41", got[0])
			}
			for _, d := range got {
				if d.Verdict == trace.VerdictFailed && d.WorstNode == "" {
					t.Fatalf("failed sample %d lost its worst-node diagnostic: %+v", d.Idx, d)
				}
			}
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: worst[%d] = %+v, want %+v (workers=1)", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestTraceExportConnected pins the no-orphans contract on the engine's own
// output: every span the recorder exports after a traced run parents to
// another exported span.
func TestTraceExportConnected(t *testing.T) {
	rec := trace.New("test", 4)
	mcSpan := rec.Start("mc", trace.CatMCRun, 0)
	var opts RunOpts
	opts.Policy = SkipUpTo(1.0)
	opts.Trace = trace.NewMC(rec, "mc", mcSpan.ID(), 4)
	_, _, err := MapPooledReportCtx(context.Background(), 60, 7, 4, opts,
		func(int) (*traceFakeState, error) { return &traceFakeState{}, nil },
		func(st *traceFakeState, idx int, rng *rand.Rand) (float64, error) {
			st.iters += int64(idx % 29)
			if st.tr != nil {
				st.tr.BeginSpan("newton-solve", 0)
				st.tr.EndSpan(1)
			}
			if idx%11 == 3 {
				return 0, errors.New("failed")
			}
			return rng.Float64(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace.Finish()
	mcSpan.End()
	evs, sum := rec.Export()
	if got := trace.Orphans(evs); got != 0 {
		t.Fatalf("%d orphan spans in the export", got)
	}
	if len(sum.Worst) != 4 {
		t.Fatalf("kept %d worst records, want 4", len(sum.Worst))
	}
	var phases int
	for i := range evs {
		if evs[i].Cat == trace.CatPhase {
			phases++
		}
	}
	if phases == 0 {
		t.Fatal("no phase spans survived into the export")
	}
}

// TestClassifyVerdict pins the outcome → verdict mapping, budget kinds
// included.
func TestClassifyVerdict(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, trace.VerdictOK},
		{errors.New("x"), trace.VerdictFailed},
		{&PanicError{Value: "boom"}, trace.VerdictPanic},
		{&lifecycle.BudgetError{Kind: lifecycle.OverWall}, trace.VerdictBudgetWall},
		{&lifecycle.BudgetError{Kind: lifecycle.OverIters}, trace.VerdictBudgetIters},
		{&lifecycle.BudgetError{Kind: lifecycle.OverHang}, trace.VerdictBudgetHang},
		{fmt.Errorf("wrapped: %w", &lifecycle.BudgetError{Kind: lifecycle.OverIters}), trace.VerdictBudgetIters},
	}
	for _, c := range cases {
		if got := classifyVerdict(c.err); got != c.want {
			t.Errorf("classifyVerdict(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
