package montecarlo

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"vstat/internal/stats"
)

func TestMapOrderAndDeterminism(t *testing.T) {
	fn := func(idx int, rng *rand.Rand) (float64, error) {
		return float64(idx) + rng.Float64()*1e-3, nil
	}
	a, err := Map(100, 42, 4, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(100, 42, 13, fn) // different worker count
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across worker counts: %g vs %g", i, a[i], b[i])
		}
		if math.Floor(a[i]) != float64(i) {
			t.Fatalf("sample order broken at %d: %g", i, a[i])
		}
	}
	c, _ := Map(100, 43, 4, fn)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(50, 1, 8, func(idx int, rng *rand.Rand) (int, error) {
		if idx == 33 {
			return 0, boom
		}
		return idx, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom, got %v", err)
	}
}

func TestMapRunsAllSamples(t *testing.T) {
	var count int64
	_, err := Map(257, 7, 16, func(idx int, rng *rand.Rand) (struct{}, error) {
		atomic.AddInt64(&count, 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 257 {
		t.Fatalf("ran %d samples", count)
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	out, err := Map(0, 1, 0, func(int, *rand.Rand) (int, error) { return 1, nil })
	if err != nil || out != nil {
		t.Fatalf("empty run: %v %v", out, err)
	}
	// workers <= 0 defaults to GOMAXPROCS; n < workers clamps.
	out2, err := Map(3, 1, -1, func(i int, _ *rand.Rand) (int, error) { return i, nil })
	if err != nil || len(out2) != 3 {
		t.Fatalf("default workers: %v %v", out2, err)
	}
}

func TestMapPooledMatchesMapAcrossWorkerCounts(t *testing.T) {
	fn := func(idx int, rng *rand.Rand) (float64, error) {
		return float64(idx) + rng.Float64()*1e-3, nil
	}
	want, err := Map(100, 42, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	var created atomic.Int64
	for _, workers := range []int{1, 4, 13} {
		created.Store(0)
		got, err := MapPooled(100, 42, workers,
			func(w int) (int, error) { created.Add(1); return w, nil },
			func(st int, idx int, rng *rand.Rand) (float64, error) { return fn(idx, rng) })
		if err != nil {
			t.Fatal(err)
		}
		if int(created.Load()) != workers {
			t.Fatalf("workers=%d built %d states", workers, created.Load())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d sample %d differs: %g vs %g", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPooledStateErrorAborts(t *testing.T) {
	boom := errors.New("no bench")
	var ran atomic.Int64
	_, err := MapPooled(40, 1, 3,
		func(w int) (int, error) {
			if w == 1 {
				return 0, boom
			}
			return w, nil
		},
		func(st int, idx int, _ *rand.Rand) (int, error) {
			ran.Add(1)
			return idx, nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected wrapped state error, got %v", err)
	}
	// The healthy workers still drain the queue; the failed worker claims
	// no samples.
	if ran.Load() != 40 {
		t.Fatalf("healthy workers ran %d of 40 samples", ran.Load())
	}
}

func TestMapPooledSampleErrorByLowestIndex(t *testing.T) {
	early, late := errors.New("early"), errors.New("late")
	_, err := MapPooled(50, 1, 8,
		func(w int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idx int, _ *rand.Rand) (int, error) {
			switch idx {
			case 12:
				return 0, early
			case 40:
				return 0, late
			}
			return idx, nil
		})
	if err == nil || !errors.Is(err, early) {
		t.Fatalf("expected lowest-index error, got %v", err)
	}
}

func TestMapPooledStateIsPerWorkerNotPerSample(t *testing.T) {
	// Each worker must see one persistent state across all its samples —
	// that is the entire point of pooling.
	type counter struct{ calls int }
	outs, err := MapPooled(64, 9, 4,
		func(w int) (*counter, error) { return &counter{}, nil },
		func(st *counter, idx int, _ *rand.Rand) (int, error) {
			st.calls++
			return st.calls, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, c := range outs {
		if c > max {
			max = c
		}
	}
	if max < 64/4 {
		t.Fatalf("max per-state call count %d; states are not persisting across samples", max)
	}
}

func TestSampleRNGIndependence(t *testing.T) {
	// Gaussian draws across samples must be uncorrelated and standard.
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = SampleRNG(99, i).NormFloat64()
	}
	if m := stats.Mean(xs); math.Abs(m) > 0.03 {
		t.Fatalf("cross-sample mean %g", m)
	}
	if sd := stats.StdDev(xs); math.Abs(sd-1) > 0.03 {
		t.Fatalf("cross-sample std %g", sd)
	}
	// Lag-1 correlation of the per-sample first draws.
	if r := stats.Correlation(xs[:n-1], xs[1:]); math.Abs(r) > 0.03 {
		t.Fatalf("lag-1 correlation %g", r)
	}
}

func TestScalarsAndColumn(t *testing.T) {
	xs, err := Scalars(10, 5, 2, func(i int, _ *rand.Rand) (float64, error) {
		return float64(i * i), nil
	})
	if err != nil || xs[3] != 9 {
		t.Fatalf("Scalars: %v %v", xs, err)
	}
	col := Column([][]float64{{1, 2}, {3, 4}, {5, 6}}, 1)
	if col[0] != 2 || col[2] != 6 {
		t.Fatalf("Column: %v", col)
	}
}
