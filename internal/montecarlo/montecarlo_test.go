package montecarlo

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"vstat/internal/stats"
)

func TestMapOrderAndDeterminism(t *testing.T) {
	fn := func(idx int, rng *rand.Rand) (float64, error) {
		return float64(idx) + rng.Float64()*1e-3, nil
	}
	a, err := Map(100, 42, 4, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(100, 42, 13, fn) // different worker count
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across worker counts: %g vs %g", i, a[i], b[i])
		}
		if math.Floor(a[i]) != float64(i) {
			t.Fatalf("sample order broken at %d: %g", i, a[i])
		}
	}
	c, _ := Map(100, 43, 4, fn)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(50, 1, 8, func(idx int, rng *rand.Rand) (int, error) {
		if idx == 33 {
			return 0, boom
		}
		return idx, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom, got %v", err)
	}
}

func TestMapRunsAllSamples(t *testing.T) {
	var count int64
	_, err := Map(257, 7, 16, func(idx int, rng *rand.Rand) (struct{}, error) {
		atomic.AddInt64(&count, 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 257 {
		t.Fatalf("ran %d samples", count)
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	out, err := Map(0, 1, 0, func(int, *rand.Rand) (int, error) { return 1, nil })
	if err != nil || out != nil {
		t.Fatalf("empty run: %v %v", out, err)
	}
	// workers <= 0 defaults to GOMAXPROCS; n < workers clamps.
	out2, err := Map(3, 1, -1, func(i int, _ *rand.Rand) (int, error) { return i, nil })
	if err != nil || len(out2) != 3 {
		t.Fatalf("default workers: %v %v", out2, err)
	}
}

func TestSampleRNGIndependence(t *testing.T) {
	// Gaussian draws across samples must be uncorrelated and standard.
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = SampleRNG(99, i).NormFloat64()
	}
	if m := stats.Mean(xs); math.Abs(m) > 0.03 {
		t.Fatalf("cross-sample mean %g", m)
	}
	if sd := stats.StdDev(xs); math.Abs(sd-1) > 0.03 {
		t.Fatalf("cross-sample std %g", sd)
	}
	// Lag-1 correlation of the per-sample first draws.
	if r := stats.Correlation(xs[:n-1], xs[1:]); math.Abs(r) > 0.03 {
		t.Fatalf("lag-1 correlation %g", r)
	}
}

func TestScalarsAndColumn(t *testing.T) {
	xs, err := Scalars(10, 5, 2, func(i int, _ *rand.Rand) (float64, error) {
		return float64(i * i), nil
	})
	if err != nil || xs[3] != 9 {
		t.Fatalf("Scalars: %v %v", xs, err)
	}
	col := Column([][]float64{{1, 2}, {3, 4}, {5, 6}}, 1)
	if col[0] != 2 || col[2] != 6 {
		t.Fatalf("Column: %v", col)
	}
}
