package montecarlo

// StreamSummary is the streaming-mergeable run summary the shard
// coordinator's constant-memory merge folds committed envelopes into. Its
// determinism contract is stronger than "stable given one order": the sums
// are accumulated *exactly* (a Shewchuk-style expansion of non-overlapping
// partials, the algorithm behind Python's math.fsum), so the rounded Sum,
// Mean, and Std are bit-identical for any insertion order, any partition
// into per-shard summaries, and any merge order. That is what lets a
// sharded run — whose shards commit in scheduling-dependent order — report
// the same statistics, to the last bit, as a single-process pass over the
// samples in index order, at any shard size.
//
// Space is O(1): a float64 expansion is bounded by the exponent range
// (~40 partials), independent of how many values were added.

import "math"

// expansion holds a sum of float64s exactly as non-overlapping partials of
// increasing magnitude. The partials always sum (as reals) to exactly the
// running total.
type expansion struct {
	p []float64
}

// add folds x into the expansion via exact two-sums (error-free
// transformations): after the call the partials again represent the exact
// real-number sum.
func (e *expansion) add(x float64) {
	i := 0
	for _, y := range e.p {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			e.p[i] = lo
			i++
		}
		x = hi
	}
	e.p = append(e.p[:i], x)
}

// merge folds another expansion in; exactness makes the result independent
// of which side the partials lived on.
func (e *expansion) merge(o *expansion) {
	for _, x := range o.p {
		e.add(x)
	}
}

// value rounds the exact sum to the nearest float64 (round half to even),
// following CPython's fsum tail: sum partials from the largest down, and
// when the discarded low part is exactly half an ulp, use the sign of the
// next partial to decide the even-rounding direction.
func (e *expansion) value() float64 {
	n := len(e.p)
	if n == 0 {
		return 0
	}
	hi := e.p[n-1]
	var lo float64
	i := n - 1
	for i > 0 {
		i--
		x, y := hi, e.p[i]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	if i > 0 && ((lo < 0 && e.p[i-1] < 0) || (lo > 0 && e.p[i-1] > 0)) {
		y := lo * 2
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// StreamSummary accumulates count, min, max, and exact sum / sum of squares
// of a float64 stream. The zero value is ready to use. Not safe for
// concurrent use; the coordinator serializes folds.
type StreamSummary struct {
	n          int64
	min, max   float64
	sum, sumSq expansion
	// nonFinite carries any NaN/Inf inputs outside the exact expansion
	// (which only holds finite partials). IEEE accumulation of specials is
	// order-independent in the cases that matter: any NaN poisons, +Inf and
	// -Inf together poison, a single Inf sign survives.
	nonFinite    float64
	sawNonFinite bool
}

// Add folds one sample.
func (s *StreamSummary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	if math.IsNaN(x) || math.IsInf(x, 0) {
		s.sawNonFinite = true
		s.nonFinite += x
		return
	}
	s.sum.add(x)
	s.sumSq.add(x * x)
}

// Merge folds another summary in. Exact accumulation makes the result
// independent of partitioning and merge order.
func (s *StreamSummary) Merge(o *StreamSummary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.n += o.n
	if o.sawNonFinite {
		s.sawNonFinite = true
		s.nonFinite += o.nonFinite
	}
	s.sum.merge(&o.sum)
	s.sumSq.merge(&o.sumSq)
}

// Count returns how many samples were added.
func (s *StreamSummary) Count() int64 { return s.n }

// Min returns the smallest sample (0 before any Add).
func (s *StreamSummary) Min() float64 { return s.min }

// Max returns the largest sample (0 before any Add).
func (s *StreamSummary) Max() float64 { return s.max }

// Sum returns the correctly-rounded exact sum.
func (s *StreamSummary) Sum() float64 {
	v := s.sum.value()
	if s.sawNonFinite {
		return v + s.nonFinite
	}
	return v
}

// Mean returns Sum()/Count() (0 for an empty summary).
func (s *StreamSummary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Sum() / float64(s.n)
}

// Std returns the sample standard deviation, computed from the exact sums
// (sqrt((Σx² − (Σx)²/n)/(n−1))). The one subtraction is performed on
// correctly-rounded exact totals, so the result is as order-independent as
// the sums are.
func (s *StreamSummary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	if s.sawNonFinite {
		return math.NaN()
	}
	sum := s.sum.value()
	ss := s.sumSq.value()
	n := float64(s.n)
	v := (ss - sum*sum/n) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
