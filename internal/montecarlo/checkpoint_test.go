package montecarlo

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"vstat/internal/lifecycle"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt.json")
	hash := ConfigHash(int64(42), "inv", 0.9)
	const n = 10
	ck, err := OpenCheckpoint[float64](path, hash, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 6; idx++ {
		ck.Record(idx, float64(idx)*1.5, map[string]int64{"dc-gmin": 1}, nil)
	}
	ck.Record(6, nil, nil, errors.New("sample exploded"))
	ck.Record(6, 99.0, nil, nil) // duplicate: must be ignored
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint[float64](path, hash, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Restored() != 7 {
		t.Fatalf("Restored = %d, want 7", re.Restored())
	}
	if re.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", re.Pending())
	}
	for idx := 0; idx < 6; idx++ {
		if !re.Completed(idx) {
			t.Fatalf("sample %d not marked completed after reload", idx)
		}
	}
	if re.Completed(7) {
		t.Fatal("unrecorded sample marked completed")
	}
	res := re.Results()
	if res[3] != 4.5 || res[6] != 0 {
		t.Fatalf("restored results %v", res)
	}
	rep := re.Report()
	if rep.Attempted != 7 || rep.Succeeded != 6 || rep.Failed != 1 {
		t.Fatalf("restored report %s", rep.String())
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Idx != 6 ||
		rep.Failures[0].Err.Error() != "sample exploded" {
		t.Fatalf("restored failures %v", rep.Failures)
	}
	if rep.Rescued["dc-gmin"] != 6 {
		t.Fatalf("restored rescued %v", rep.Rescued)
	}
}

func TestCheckpointConfigHashRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt.json")
	ck, err := OpenCheckpoint[float64](path, ConfigHash(int64(1)), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(0, 1.0, nil, nil)
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint[float64](path, ConfigHash(int64(2)), 4, 0); err == nil {
		t.Fatal("checkpoint from a different configuration loaded without error")
	} else if !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("rejection error %v does not name the configuration mismatch", err)
	}
	if _, err := OpenCheckpoint[float64](path, ConfigHash(int64(1)), 8, 0); err == nil {
		t.Fatal("checkpoint with a different sample count loaded without error")
	}
}

func TestCheckpointFlushAtomicNoTempLeft(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt.json")
	ck, err := OpenCheckpoint[float64](path, ConfigHash(int64(5)), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	// flushEvery=3 forces many automatic flushes; each must rename its temp
	// file away.
	for idx := 0; idx < 200; idx++ {
		ck.Record(idx, float64(idx), nil, nil)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "run.ckpt.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir holds %v, want only run.ckpt.json", names)
	}
}

// ckRescueState gives every (13k)-th sample one synthetic rescue so the
// per-sample rescue deltas survive the kill/resume cycle.
type ckRescueState struct{ counts map[string]int64 }

// RescueCounts returns a snapshot, like spice.SolverStats.RescueCounts does
// — the engine diffs successive snapshots for the per-sample deltas.
func (s *ckRescueState) RescueCounts() map[string]int64 {
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// TestCheckpointKillResumeBitIdentical is the acceptance run: a 10k-sample
// Monte Carlo killed at roughly half-way and resumed — at a different worker
// count — must produce bit-identical results and an identical run report to
// an uninterrupted run.
func TestCheckpointKillResumeBitIdentical(t *testing.T) {
	const n, seed = 10000, int64(20130318)
	hash := ConfigHash(seed, n)
	path := filepath.Join(t.TempDir(), "mc.ckpt.json")

	sample := func(st *ckRescueState, idx int, rng *rand.Rand) (float64, error) {
		if idx%997 == 0 && idx > 0 {
			return 0, errors.New("deterministic failure")
		}
		if idx%13 == 0 {
			st.counts["test-stage"]++
		}
		return ctxSample(idx, rng)
	}
	newState := func(int) (*ckRescueState, error) {
		return &ckRescueState{counts: make(map[string]int64)}, nil
	}

	// Reference: one uninterrupted checkpointed run.
	refCk, err := OpenCheckpoint[float64](path+".ref", hash, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = MapPooledReportCtx(context.Background(), n, seed, 4,
		RunOpts{Policy: SkipUpTo(0.01), Checkpoint: refCk}, newState, sample)
	if err != nil {
		t.Fatal(err)
	}
	want := refCk.Results()
	wantRep := refCk.Report()

	// Phase 1: kill at ~50%.
	ck1, err := OpenCheckpoint[float64](path, hash, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, _, err = MapPooledReportCtx(ctx, n, seed, 4,
		RunOpts{Policy: SkipUpTo(0.01), Checkpoint: ck1},
		newState,
		func(st *ckRescueState, idx int, rng *rand.Rand) (float64, error) {
			if done.Add(1) == n/2 {
				cancel()
			}
			return sample(st, idx, rng)
		})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want a context.Canceled chain", err)
	}
	if err := ck1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume from disk with a different worker count.
	ck2, err := OpenCheckpoint[float64](path, hash, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	restored := ck2.Restored()
	if restored == 0 || restored >= n {
		t.Fatalf("resume restored %d samples, expected a partial run", restored)
	}
	var rerun atomic.Int64
	_, _, err = MapPooledReportCtx(context.Background(), n, seed, 7,
		RunOpts{Policy: SkipUpTo(0.01), Checkpoint: ck2},
		newState,
		func(st *ckRescueState, idx int, rng *rand.Rand) (float64, error) {
			rerun.Add(1)
			return sample(st, idx, rng)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(rerun.Load()); got != n-restored {
		t.Fatalf("resume re-ran %d samples, want exactly the %d missing ones", got, n-restored)
	}
	if p := ck2.Pending(); p != 0 {
		t.Fatalf("resumed run left %d samples pending", p)
	}

	got := ck2.Results()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %.17g after kill+resume, uninterrupted %.17g", i, got[i], want[i])
		}
	}
	gotRep := ck2.Report()
	if gotRep.Attempted != wantRep.Attempted || gotRep.Succeeded != wantRep.Succeeded ||
		gotRep.Failed != wantRep.Failed {
		t.Fatalf("resumed report %s, uninterrupted %s", gotRep.String(), wantRep.String())
	}
	if len(gotRep.Failures) != len(wantRep.Failures) {
		t.Fatalf("resumed failures %d, uninterrupted %d", len(gotRep.Failures), len(wantRep.Failures))
	}
	for i := range wantRep.Failures {
		if gotRep.Failures[i].Idx != wantRep.Failures[i].Idx ||
			gotRep.Failures[i].Err.Error() != wantRep.Failures[i].Err.Error() {
			t.Fatalf("failure %d: resumed %v, uninterrupted %v",
				i, gotRep.Failures[i], wantRep.Failures[i])
		}
	}
	if gotRep.Rescued["test-stage"] != wantRep.Rescued["test-stage"] {
		t.Fatalf("resumed rescued %v, uninterrupted %v", gotRep.Rescued, wantRep.Rescued)
	}
}

// TestSyncDirErrorSurfaces pins the durability error path: syncing a
// directory that does not exist must return an error (flushLocked wraps it
// as "sync dir"), and a normal flush on a real directory must still work —
// i.e. the rename is followed by a successful directory fsync.
func TestSyncDirErrorSurfaces(t *testing.T) {
	if err := syncDir(filepath.Join(t.TempDir(), "no-such-dir")); err == nil {
		t.Fatal("syncDir on a nonexistent directory returned nil, want error")
	}

	dir := t.TempDir()
	ck, err := OpenCheckpoint[float64](filepath.Join(dir, "run.ckpt.json"), "h", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(0, 1.0, nil, nil)
	if err := ck.Flush(); err != nil {
		t.Fatalf("flush with directory sync failed: %v", err)
	}
	// The flush must have published the file (rename happened before the
	// directory sync, and the sync succeeded).
	if _, err := os.Stat(filepath.Join(dir, "run.ckpt.json")); err != nil {
		t.Fatalf("checkpoint file missing after flush: %v", err)
	}
}

// TestRecordedFailureClassification pins the wire-format provenance flags
// shared by checkpoints and shard envelopes.
func TestRecordedFailureClassification(t *testing.T) {
	plain := NewRecordedFailure(3, errors.New("no convergence"))
	if plain.Panic || plain.Budget || plain.Msg != "no convergence" || plain.Idx != 3 {
		t.Fatalf("plain failure misclassified: %+v", plain)
	}
	pan := NewRecordedFailure(4, &PanicError{Value: "boom"})
	if !pan.Panic {
		t.Fatalf("panic failure not flagged: %+v", pan)
	}
	bud := NewRecordedFailure(5, &lifecycle.BudgetError{Kind: lifecycle.OverWall})
	if !bud.Budget {
		t.Fatalf("budget failure not flagged: %+v", bud)
	}
	if got := plain.Err().Error(); got != "no convergence" {
		t.Fatalf("restored message %q, want original", got)
	}
}
