package montecarlo

// Batched Monte Carlo engine: MapPooledBatchReportCtx is MapPooledReportCtx
// with each worker claiming a contiguous block of up to `lanes` sample
// indices per trip to the shared atomic counter and processing the block in
// one call — the seam the lockstep SoA device-evaluation path (spice.BatchSim)
// plugs into. Determinism is unchanged: a sample's RNG is still derived from
// (seed, idx) alone, so the value computed for index idx is independent of
// worker count, lane width, and claim interleaving.
//
// Lifecycle semantics carry over lane-wise:
//
//   - Cancellation: a lane whose solve is interrupted by ctx reports a
//     cancellation error and is counted in RunReport.Interrupted (recorded
//     nowhere, re-run on resume), exactly like a scalar in-flight sample.
//   - Budget: each lane is armed individually (BatchSampleArmer) right
//     before the batch call, so per-sample iteration/wall budgets apply per
//     lane. All lanes of a batch share one arming instant; because every
//     lane's cooperative deadline then expires at batch-start + Wall, a
//     batch's legitimate wall time is bounded like a single sample's and the
//     hang watchdog threshold needs no scaling.
//   - Hang watchdog: a wedged batch is abandoned whole — the per-sample
//     commit CAS decides slot ownership lane by lane, so lanes the worker
//     already committed keep their results and only the uncommitted rest
//     become OverHang failures.
//   - Checkpoint/resume: already-completed indices inside a claimed block
//     are skipped (their commit word is pre-claimed so the watchdog cannot
//     touch them), making resumed batches ragged; per-lane rescue-counter
//     deltas are recorded via LaneRescueReporter.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vstat/internal/lifecycle"
)

// BatchSampleArmer is implemented by batched worker states whose per-lane
// circuits enforce per-sample budgets. The engine arms lanes [0, m) just
// before each batch call (m = the batch's live lane count).
type BatchSampleArmer interface {
	ArmLane(lane int, ctx context.Context, b lifecycle.Budget)
}

// LaneRescueReporter exposes one lane's cumulative rescue counters, so the
// engine can attribute per-sample deltas to checkpoint records. States that
// also implement RescueReporter contribute their totals to the run report.
type LaneRescueReporter interface {
	LaneRescueCounts(lane int) map[string]int64
}

// batchSlot is one worker's watchdog-visible in-flight block: the claimed
// index range [lo, hi) and its start time. The worker stores start and hi
// before lo, so a coordinator that observes lo >= 0 observes the rest.
type batchSlot struct {
	lo    atomic.Int64 // -1 when idle
	hi    atomic.Int64
	start atomic.Int64
	gone  bool
}

// safeBatch runs one batch call under a panic guard; a panic poisons every
// lane of the batch with the same *PanicError.
func safeBatch[S, T any](fn func(st S, idxs []int, rngs []*rand.Rand, out []T, errs []error),
	st S, idxs []int, rngs []*rand.Rand, out []T, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			perr := &PanicError{Value: r, Stack: debug.Stack()}
			var zero T
			for j := range idxs {
				out[j], errs[j] = zero, perr
			}
		}
	}()
	fn(st, idxs, rngs, out, errs)
}

// MapPooledBatchReportCtx runs fn over samples 0..n-1 with per-worker pooled
// state, claiming up to `lanes` contiguous indices per batch. fn must fill
// out[j] / errs[j] for every claimed lane j (idxs[j] is lane j's sample
// index, rngs[j] its deterministic (seed, idx) RNG). lanes <= 1 degrades to
// one-sample batches (scalar claiming order).
func MapPooledBatchReportCtx[S, T any](ctx context.Context, n int, seed int64, workers, lanes int, opts RunOpts,
	newState func(worker int) (S, error),
	fn func(st S, idxs []int, rngs []*rand.Rand, out []T, errs []error)) ([]T, RunReport, error) {
	rep := RunReport{}
	if n <= 0 {
		return nil, rep, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if lanes < 1 {
		lanes = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > (n+lanes-1)/lanes {
		workers = (n + lanes - 1) / lanes
	}
	pol := opts.Policy
	ck := opts.Checkpoint
	off := opts.Offset

	failLimit := int64(n)
	switch {
	case pol.OnFailure == FailFast:
		failLimit = 0
	case pol.MaxFailFrac > 0:
		failLimit = int64(pol.MaxFailFrac * float64(n))
	}

	ps := currentProgress()
	if ps != nil {
		ps.RunStart(n, workers)
		defer ps.RunEnd()
	}

	out := make([]T, n)
	errs := make([]error, n)
	ran := make([]bool, n)
	commit := make([]atomic.Int32, n)
	var next, failed atomic.Int64
	var abort atomic.Bool
	base := time.Now()

	var mu sync.Mutex
	var states []S
	var stateErr error

	exitCh := make(chan struct{})
	// runWorker returns true when the worker's in-flight block was abandoned
	// by the watchdog: the coordinator already accounted for it and spawned a
	// replacement, so it vanishes without signalling exit.
	runWorker := func(w int, sl *batchSlot) bool {
		st, err := safeState(newState, w)
		if err != nil {
			mu.Lock()
			if stateErr == nil {
				stateErr = fmt.Errorf("montecarlo: worker %d state: %w", w, err)
			}
			mu.Unlock()
			abort.Store(true)
			return false
		}
		armer, armed := any(st).(BatchSampleArmer)
		laneRep, laneReports := any(st).(LaneRescueReporter)
		idxs := make([]int, lanes)  // local indices (result slots, commit words)
		gidxs := make([]int, lanes) // global indices (Offset-shifted; fn and RNG see these)
		rngs := make([]*rand.Rand, lanes)
		bout := make([]T, lanes)
		berrs := make([]error, lanes)
		prev := make([]map[string]int64, lanes)
		for !abort.Load() && ctx.Err() == nil {
			lo := int(next.Add(int64(lanes))) - lanes
			if lo >= n {
				break
			}
			hi := lo + lanes
			if hi > n {
				hi = n
			}
			m := 0
			for idx := lo; idx < hi; idx++ {
				if ck != nil && ck.Completed(idx) {
					// Pre-claim the slot so the watchdog never abandons a
					// sample that is not actually running.
					commit[idx].CompareAndSwap(0, 1)
					continue
				}
				idxs[m] = idx
				gidxs[m] = off + idx
				m++
			}
			if m == 0 {
				continue
			}
			sl.start.Store(int64(time.Since(base)))
			sl.hi.Store(int64(hi))
			sl.lo.Store(int64(lo))
			for j := 0; j < m; j++ {
				rngs[j] = SampleRNG(seed, gidxs[j])
				berrs[j] = nil
				if ck != nil && laneReports {
					prev[j] = laneRep.LaneRescueCounts(j)
				}
				if armed {
					armer.ArmLane(j, ctx, opts.Budget)
				}
			}
			safeBatch(fn, st, gidxs[:m], rngs[:m], bout[:m], berrs[:m])
			sl.lo.Store(-1)
			lost := false
			for j := 0; j < m; j++ {
				idx := idxs[j]
				if !commit[idx].CompareAndSwap(0, 1) {
					// The watchdog gave up on this block: it owns every slot
					// we have not already committed, and a replacement worker
					// is running. Keep what we won, touch nothing else.
					lost = true
					continue
				}
				ran[idx] = true
				out[idx], errs[idx] = bout[j], berrs[j]
				if lifecycle.IsCancellation(berrs[j]) {
					continue
				}
				if ck != nil {
					var v any
					if berrs[j] == nil {
						v = bout[j]
					}
					var delta map[string]int64
					if laneReports {
						delta = countDelta(laneRep.LaneRescueCounts(j), prev[j])
					}
					ck.Record(idx, v, delta, berrs[j])
				}
				if ps != nil {
					ps.SampleDone(berrs[j] != nil)
				}
				if berrs[j] != nil && failed.Add(1) > failLimit {
					abort.Store(true)
				}
			}
			if lost {
				return true
			}
		}
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
		return false
	}

	slots := make([]*batchSlot, 0, workers)
	spawn := func(w int) *batchSlot {
		sl := &batchSlot{}
		sl.lo.Store(-1)
		slots = append(slots, sl)
		go func() {
			if !runWorker(w, sl) {
				exitCh <- struct{}{}
			}
		}()
		return sl
	}
	for w := 0; w < workers; w++ {
		spawn(w)
	}
	spawned := workers

	var tickC <-chan time.Time
	var hangLimit time.Duration
	if opts.Budget.Wall > 0 {
		grace := opts.HangGrace
		if grace <= 0 {
			grace = opts.Budget.Wall
		}
		hangLimit = opts.Budget.Wall + grace
		tick := hangLimit / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		tickC = ticker.C
	}
	received, abandoned := 0, 0
	for received+abandoned < spawned {
		select {
		case <-exitCh:
			received++
		case now := <-tickC:
			nowNs := int64(now.Sub(base))
			for _, sl := range slots {
				if sl.gone {
					continue
				}
				lo := sl.lo.Load()
				if lo < 0 || nowNs-sl.start.Load() <= int64(hangLimit) {
					continue
				}
				// Abandon the whole block: every slot the worker has not
				// committed becomes an OverHang failure; slots it already
				// committed (or checkpoint-skips) keep their state.
				sl.gone = true
				abandoned++
				herr := &lifecycle.BudgetError{
					Kind:    lifecycle.OverHang,
					Elapsed: time.Duration(nowNs - sl.start.Load()),
					Wall:    opts.Budget.Wall,
				}
				for idx := lo; idx < sl.hi.Load(); idx++ {
					if !commit[idx].CompareAndSwap(0, 2) {
						continue
					}
					ran[idx] = true
					errs[idx] = herr
					if ck != nil {
						ck.Record(int(idx), nil, nil, herr)
					}
					if ps != nil {
						ps.SampleDone(true)
					}
					if failed.Add(1) > failLimit {
						abort.Store(true)
					}
				}
				if !abort.Load() && ctx.Err() == nil {
					spawn(spawned)
					spawned++
				}
			}
		}
	}

	if stateErr != nil {
		return nil, rep, stateErr
	}

	for idx := range errs {
		if !ran[idx] {
			continue
		}
		err := errs[idx]
		if err != nil && lifecycle.IsCancellation(err) {
			rep.Interrupted++
			continue
		}
		rep.Attempted++
		switch {
		case err == nil:
			rep.Succeeded++
		default:
			rep.Failed++
			var pe *PanicError
			if errors.As(err, &pe) {
				rep.Panics++
			}
			rep.Failures = append(rep.Failures, SampleFailure{Idx: off + idx, Err: err})
		}
	}
	mu.Lock()
	for _, st := range states {
		if rr, ok := any(st).(RescueReporter); ok {
			for k, v := range rr.RescueCounts() {
				if v == 0 {
					continue
				}
				if rep.Rescued == nil {
					rep.Rescued = make(map[string]int64)
				}
				rep.Rescued[k] += v
			}
		}
	}
	mu.Unlock()

	if ctx.Err() != nil {
		rep.Cancelled = true
		return out, rep, fmt.Errorf("montecarlo: run cancelled after %d completed samples: %w",
			rep.Succeeded, ctx.Err())
	}
	if int64(rep.Failed) > failLimit {
		if pol.OnFailure == FailFast {
			f := rep.Failures[0]
			return nil, rep, fmt.Errorf("montecarlo: sample %d: %w", f.Idx, f.Err)
		}
		rep.CapTripped = true
		return nil, rep, fmt.Errorf("montecarlo: %d of %d attempted samples failed (cap %g): %w",
			rep.Failed, rep.Attempted, pol.MaxFailFrac, ErrTooManyFailures)
	}
	return out, rep, nil
}

// countDelta returns cur minus prev, keeping nonzero entries (nil when
// nothing changed).
func countDelta(cur, prev map[string]int64) map[string]int64 {
	var d map[string]int64
	for k, v := range cur {
		if dv := v - prev[k]; dv != 0 {
			if d == nil {
				d = make(map[string]int64, len(cur))
			}
			d[k] = dv
		}
	}
	return d
}
