package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// batchFromScalar lifts a scalar sample function into the batch shape.
func batchFromScalar[S, T any](fn func(st S, idx int, rng *rand.Rand) (T, error)) func(S, []int, []*rand.Rand, []T, []error) {
	return func(st S, idxs []int, rngs []*rand.Rand, out []T, errs []error) {
		for j, idx := range idxs {
			out[j], errs[j] = fn(st, idx, rngs[j])
		}
	}
}

// TestBatchMatchesScalarEngine pins the determinism contract: for any lane
// width and worker count, the batched engine produces exactly the values and
// report the scalar engine produces for the same (seed, idx) stream.
func TestBatchMatchesScalarEngine(t *testing.T) {
	const n, seed = 37, 42
	fn := func(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
		v := rng.NormFloat64() + float64(idx)
		if idx%9 == 4 {
			return 0, fmt.Errorf("sample %d synthetic failure", idx)
		}
		return v, nil
	}
	pol := Policy{OnFailure: SkipAndRecord, MaxFailFrac: 1}
	want, wantRep, err := MapPooledReportCtx(context.Background(), n, seed, 1, RunOpts{Policy: pol},
		func(int) (struct{}, error) { return struct{}{}, nil }, fn)
	if err != nil {
		t.Fatalf("scalar engine: %v", err)
	}
	for _, lanes := range []int{1, 4, 16} {
		for _, workers := range []int{1, 3} {
			got, rep, err := MapPooledBatchReportCtx(context.Background(), n, seed, workers, lanes,
				RunOpts{Policy: pol},
				func(int) (struct{}, error) { return struct{}{}, nil }, batchFromScalar(fn))
			if err != nil {
				t.Fatalf("lanes=%d workers=%d: %v", lanes, workers, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("lanes=%d workers=%d sample %d: got %v want %v", lanes, workers, i, got[i], want[i])
				}
			}
			if rep.Attempted != wantRep.Attempted || rep.Succeeded != wantRep.Succeeded || rep.Failed != wantRep.Failed {
				t.Fatalf("lanes=%d workers=%d report %+v, want %+v", lanes, workers, rep, wantRep)
			}
		}
	}
}

// fakeSink records checkpoint traffic and marks a fixed set as completed.
type fakeSink struct {
	mu   sync.Mutex
	done map[int]bool
	rec  map[int]bool
}

func (f *fakeSink) Completed(idx int) bool { return f.done[idx] }
func (f *fakeSink) Record(idx int, _ any, _ map[string]int64, _ error) {
	f.mu.Lock()
	f.rec[idx] = true
	f.mu.Unlock()
}

// TestBatchCheckpointSkipsCompleted verifies resumed batches go ragged:
// already-completed indices inside a claimed block are skipped, never re-run,
// and never re-recorded.
func TestBatchCheckpointSkipsCompleted(t *testing.T) {
	const n = 24
	sink := &fakeSink{done: map[int]bool{}, rec: map[int]bool{}}
	for i := 0; i < n; i += 2 {
		sink.done[i] = true // evens restored by a previous run
	}
	var mu sync.Mutex
	ran := map[int]bool{}
	_, rep, err := MapPooledBatchReportCtx(context.Background(), n, 7, 2, 8,
		RunOpts{Checkpoint: sink},
		func(int) (struct{}, error) { return struct{}{}, nil },
		batchFromScalar(func(_ struct{}, idx int, rng *rand.Rand) (int, error) {
			mu.Lock()
			ran[idx] = true
			mu.Unlock()
			return idx, nil
		}))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < n; i++ {
		odd := i%2 == 1
		if ran[i] != odd {
			t.Fatalf("sample %d ran=%v, want %v", i, ran[i], odd)
		}
		if sink.rec[i] != odd {
			t.Fatalf("sample %d recorded=%v, want %v", i, sink.rec[i], odd)
		}
	}
	if rep.Succeeded != n/2 {
		t.Fatalf("succeeded %d, want %d", rep.Succeeded, n/2)
	}
}

// TestBatchCancelledContext verifies a dead context yields a cancelled
// partial run, mirroring the scalar engine.
func TestBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rep, err := MapPooledBatchReportCtx(ctx, 16, 1, 2, 4, RunOpts{},
		func(int) (struct{}, error) { return struct{}{}, nil },
		batchFromScalar(func(_ struct{}, idx int, _ *rand.Rand) (int, error) { return idx, nil }))
	if !rep.Cancelled {
		t.Fatalf("report not marked cancelled: %+v", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestBatchFailFast verifies FailFast aborts on the first failing lane.
func TestBatchFailFast(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := MapPooledBatchReportCtx(context.Background(), 32, 3, 1, 4,
		RunOpts{Policy: Policy{OnFailure: FailFast}},
		func(int) (struct{}, error) { return struct{}{}, nil },
		batchFromScalar(func(_ struct{}, idx int, _ *rand.Rand) (int, error) {
			if idx == 5 {
				return 0, boom
			}
			return idx, nil
		}))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrap of boom", err)
	}
}

// TestBatchPanicPoisonsBlock verifies a panicking batch surfaces a
// *PanicError on each of its samples under SkipAndRecord.
func TestBatchPanicPoisonsBlock(t *testing.T) {
	_, rep, err := MapPooledBatchReportCtx(context.Background(), 8, 3, 1, 4,
		RunOpts{Policy: Policy{OnFailure: SkipAndRecord, MaxFailFrac: 1}},
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, idxs []int, _ []*rand.Rand, out []int, errs []error) {
			for _, idx := range idxs {
				if idx == 6 {
					panic("kernel meltdown")
				}
			}
			for j, idx := range idxs {
				out[j], errs[j] = idx, nil
			}
		})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Panics != 4 {
		t.Fatalf("panics = %d, want 4 (the whole block)", rep.Panics)
	}
	if rep.Failed != 4 || rep.Succeeded != 4 {
		t.Fatalf("failed=%d succeeded=%d, want 4/4", rep.Failed, rep.Succeeded)
	}
}

// recordSink captures every drained (recorded) sample's value and error so a
// cancelled run's partial results can be compared against a full run.
type recordSink struct {
	mu   sync.Mutex
	vals map[int]float64
	errs map[int]string
}

func (s *recordSink) Completed(int) bool { return false }
func (s *recordSink) Record(idx int, v any, _ map[string]int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errs[idx] = err.Error()
		return
	}
	s.vals[idx] = v.(float64)
}

// TestBatchMidRunCancelDrainsBitIdentical cancels a batched run midway and
// pins the drain contract: blocks already claimed finish, every drained
// sample's value is bit-identical to the uncancelled run's, the report
// counts exactly the drained samples, and unclaimed indices are simply never
// run (they are neither attempted nor interrupted).
func TestBatchMidRunCancelDrainsBitIdentical(t *testing.T) {
	const n, seed, lanes, workers = 64, 99, 4, 2
	pol := Policy{OnFailure: SkipAndRecord, MaxFailFrac: 1}
	fn := func(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
		v := rng.NormFloat64() * float64(idx+1)
		if idx%11 == 3 {
			return 0, fmt.Errorf("sample %d synthetic failure", idx)
		}
		return v, nil
	}
	ref, refRep, err := MapPooledBatchReportCtx(context.Background(), n, seed, workers, lanes,
		RunOpts{Policy: pol},
		func(int) (struct{}, error) { return struct{}{}, nil }, batchFromScalar(fn))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refErrs := make(map[int]string)
	for _, f := range refRep.Failures {
		refErrs[f.Idx] = f.Err.Error()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &recordSink{vals: map[int]float64{}, errs: map[int]string{}}
	var done atomic.Int64
	_, rep, err := MapPooledBatchReportCtx(ctx, n, seed, workers, lanes,
		RunOpts{Policy: pol, Checkpoint: sink},
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(st struct{}, idxs []int, rngs []*rand.Rand, out []float64, errs []error) {
			batchFromScalar(fn)(st, idxs, rngs, out, errs)
			// Trip the cancel once a couple of blocks have drained; blocks
			// claimed before the trip still commit their results below.
			if done.Add(int64(len(idxs))) >= 2*lanes {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	if !rep.Cancelled {
		t.Fatalf("report not marked cancelled: %+v", rep)
	}
	drained := len(sink.vals) + len(sink.errs)
	if drained == 0 || drained >= n {
		t.Fatalf("drained %d of %d samples; want a genuine partial run", drained, n)
	}
	if rep.Attempted != drained {
		t.Fatalf("report attempted %d, sink drained %d", rep.Attempted, drained)
	}
	if rep.Interrupted != 0 {
		// Plain compute lanes never observe ctx mid-batch, so every claimed
		// lane drains; armed circuit lanes are covered by the experiments
		// package's eviction test.
		t.Fatalf("interrupted %d lanes, want 0 (all claimed blocks drain)", rep.Interrupted)
	}
	for idx, v := range sink.vals {
		if v != ref[idx] {
			t.Fatalf("drained sample %d = %v, full run computed %v", idx, v, ref[idx])
		}
	}
	for idx, msg := range sink.errs {
		if refErrs[idx] != msg {
			t.Fatalf("drained failure %d = %q, full run recorded %q", idx, msg, refErrs[idx])
		}
	}
}
