# Build/test tiers and the benchmark runner. Plain GNU make, Go stdlib only.

GO ?= go

.PHONY: tier1 tier2 bench bench-mc race vet obs sparse lifecycle batch shard shardcrash trace tape

# Tier 1: the build + vet + test gate every change must keep green
# (ROADMAP.md).
tier1: vet obs sparse lifecycle batch shard shardcrash trace tape
	$(GO) build ./... && $(GO) test ./...

# Static analysis alone (also the first rung of tier1).
vet:
	$(GO) vet ./...

# Observability rung: the metrics registry / scope / event layer and the
# zero-overhead guards on the instrumented solver hot path.
obs:
	$(GO) test ./internal/obs/ -count=1
	$(GO) test ./internal/spice/ -run 'TestInstrumented|TestSolverPhase|TestDCRescue' -count=1

# Sparse linear core rung: the symbolic-once sparse LU and the stamp-list
# assembly path, under the race detector (the symbolic object is shared
# per-worker state in pooled Monte Carlo).
sparse:
	$(GO) test -race ./internal/linalg/ ./internal/spice/ -count=1

# Run-lifecycle rung: context cancellation, per-sample budgets, the hang
# watchdog, and checkpoint/resume — under the race detector and repeated,
# because the watchdog abandons goroutines and the checkpoint is shared
# mutable state.
lifecycle:
	$(GO) test -race -count=2 ./internal/lifecycle/
	$(GO) test -race -count=2 -run 'TestMapCtx|TestBudget|TestWatchdog|TestCheckpoint' ./internal/montecarlo/
	$(GO) test -race -count=2 -run 'TestArmSample|TestArmed' ./internal/spice/
	$(GO) test -race -count=2 -run 'TestRunPooledMCKillAndResume|TestHangSample' ./internal/experiments/

# Batched lockstep engine rung: scalar-vs-batch bit identity (kernel and
# whole-engine), lane eviction, the zero-allocation batched transient, and
# the K-lane Monte Carlo scheduler — under the race detector, because lane
# blocks share the per-worker batch simulator and report aggregation.
batch:
	$(GO) test -race ./internal/vsmodel/ -run 'TestBatch|TestFallbackBatch|TestNativeDerivs' -count=1
	$(GO) test -race ./internal/circuits/ -run 'TestBatch' -count=1
	$(GO) test -race ./internal/montecarlo/ -run 'TestBatch' -count=1

# Sharded-coordinator rung: the coordinator/worker protocol under the race
# detector and repeated — the commit CAS, retry/backoff timers, straggler
# speculation, and worker retirement all race by design — plus the full
# fault-injection matrix (drop/delay/duplicate/corrupt/vanish) and the
# bit-identical-merge and cancellation contracts at the engine and
# experiments layers.
shard:
	$(GO) vet ./internal/shard/ ./cmd/vsshard/
	$(GO) test -race -short -count=2 ./internal/shard/
	$(GO) test -race -count=2 -run 'TestSharded|TestBatchEvictionCancel' ./internal/experiments/
	$(GO) test -race -count=2 -run 'TestOffset|TestBatchMidRunCancel|TestRecordedFailure|TestSyncDir' ./internal/montecarlo/

# Crash-safety rung: the durable dispatch journal (kill-at-50% resume,
# torn-tail recovery, foreign-run rejection), the streaming constant-memory
# merge and its exact order/partition-invariant accumulator, and the
# drain/fatal error taxonomy — under the race detector, because journal
# appends, the streaming fold, and the live-envelope high-water mark all
# sit inside the commit critical section by design. The 1.2M-sample
# memory-bound acceptance run is excluded here (-short) and runs in the
# plain tier1 `go test ./...` pass instead.
shardcrash:
	$(GO) vet ./internal/shard/ ./internal/montecarlo/ ./cmd/vsshard/
	$(GO) test -race -short -count=2 -run 'TestJournal|TestStreaming|TestFaultCoordKill|TestFaultDrain|TestHTTPEndpoint|TestGate|TestStatsCheck' ./internal/shard/
	$(GO) test -race -count=1 -run 'TestStreamSummary' ./internal/montecarlo/
	$(GO) test -race -count=1 -run 'TestShardedRunJournalResume' ./internal/experiments/

# Distributed-tracing rung: the span/flight-recorder layer under the race
# detector (worker tracers merge into shared worst-K sets), the cross-
# transport trace-stitching and worst-K determinism contracts, the batched
# phase-accounting acceptance, and the zero-alloc guard pinning that a
# tracing-disabled armed transient step allocates nothing.
trace:
	$(GO) test -race -count=2 ./internal/obs/trace/
	$(GO) test -race -count=1 -run 'TestTrace|TestClassifyVerdict' ./internal/montecarlo/ ./internal/shard/
	$(GO) test -race -count=1 -run 'TestBatchedPhaseSelfTimesCoverWall' ./internal/experiments/
	$(GO) test -count=1 -run 'TestTracingDisabledArmedStepAllocFree|TestScopeForwardsSolverSpans' ./internal/spice/
	$(GO) test -count=1 -run 'TestPrometheusGolden|TestHelpSurvives' ./internal/obs/

# Compiled op-tape rung: the exact interpreter's bit-identity against the
# scalar closed-form path (single evals, SoA batches, and full circuit MC),
# the fastmath kernels' ULP budgets, tape-fast self-reproducibility across
# worker counts and shard transports, kernel selection/binding, and the
# zero-allocation guard on the tape evaluation hot path — under the race
# detector where the lockstep engine shares per-worker tape slabs.
tape:
	$(GO) test -race ./internal/vsmodel/ -run 'TestTape|TestFastMath|TestKernel' -count=1
	$(GO) test -race -count=1 -run 'TestTapeFastMCDeterminism|TestTapeExactMCMatchesDirect' ./internal/experiments/
	$(GO) test -count=1 -run 'TestTapeZeroAlloc' ./internal/vsmodel/

# Tier 2: the race detector over the full tree, including the pooled
# parallel Monte Carlo engine.
tier2: vet
	$(GO) test -race ./...

# Race detector over the concurrency-bearing packages: the Monte Carlo
# driver (failure policies, panic recovery, report aggregation, the
# context-aware *Ctx variants with their hang watchdog and checkpoint
# sink), the solver rescue ladder, and the pooled experiment plumbing.
race:
	$(GO) test -race ./internal/montecarlo/ ./internal/spice/ ./internal/obs/ -count=1
	$(GO) test -race ./internal/experiments/ -run 'TestMap|TestPooled|TestFault|TestFail|TestMCRescue|TestRunPooledMC|TestHangSample' -count=1

# Benchmark runner: the paper-figure per-sample benches plus the pooled
# vs rebuild Monte Carlo pairs (the speedup evidence for the pooled engine).
bench:
	$(GO) test -bench=BenchmarkFig5 -benchmem -run xxx .
	$(GO) test -bench=BenchmarkMC -benchmem -run xxx .

# Machine-readable perf record for the MC units; writes BENCH_mc.json.
bench-mc:
	$(GO) run ./cmd/vsbench -n 64 -mode both
