# Build/test tiers and the benchmark runner. Plain GNU make, Go stdlib only.

GO ?= go

.PHONY: tier1 tier2 bench bench-mc race

# Tier 1: the build + test gate every change must keep green (ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

# Tier 2: static analysis plus the race detector over the full tree,
# including the pooled parallel Monte Carlo engine.
tier2:
	$(GO) vet ./... && $(GO) test -race ./...

# Race detector over just the concurrency-bearing packages (quick).
race:
	$(GO) test -race ./internal/montecarlo/ ./internal/experiments/ -run 'TestMap|TestPooled' -count=1

# Benchmark runner: the paper-figure per-sample benches plus the pooled
# vs rebuild Monte Carlo pairs (the speedup evidence for the pooled engine).
bench:
	$(GO) test -bench=BenchmarkFig5 -benchmem -run xxx .
	$(GO) test -bench=BenchmarkMC -benchmem -run xxx .

# Machine-readable perf record for the MC units; writes BENCH_mc.json.
bench-mc:
	$(GO) run ./cmd/vsbench -n 64 -mode both
