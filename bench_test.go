// Package vstat_bench holds the benchmark harness of the reproduction: one
// benchmark per paper table/figure (timing the per-sample unit of work that
// the experiment Monte Carlos), plus ablation benches for the design
// choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Table IV — the paper's runtime/memory comparison — is the pair of
// *VS/*Golden benchmarks for each cell; the per-op ratios are the
// reproduction's speedup numbers.
package vstat_bench

import (
	"math/rand"
	"sync"
	"testing"

	"vstat/internal/bpv"
	"vstat/internal/bsim"
	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/experiments"
	"vstat/internal/extract"
	"vstat/internal/linalg"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/spice"
	"vstat/internal/stats"
	"vstat/internal/vsmodel"
)

// benchSuite builds the extraction suite once (Fig. 1 fits + Table II BPV)
// with a small Monte Carlo so benchmark startup stays short.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func getSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		s, err := experiments.NewSuite(experiments.Config{Seed: 3, Scale: 0.05, Vdd: 0.9})
		if err != nil {
			panic(err)
		}
		suite = s
	})
	return suite
}

// ---- Fig. 1: nominal extraction ----

func BenchmarkFig1Extraction(b *testing.B) {
	ref := bsim.NMOS40(300e-9)
	ds := extract.SampleDevice(&ref, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := extract.FitVS(vsmodel.NMOS40(300e-9), ds); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table II / Fig. 2: BPV solves ----

func bpvData(b *testing.B, s *experiments.Suite) (*bpv.Extraction, []bpv.GeometryVariance) {
	b.Helper()
	return s.ExtractionN, s.MeasuredN
}

func BenchmarkTable2BPVJoint(b *testing.B) {
	ex, data := bpvData(b, getSuite(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SolveJoint(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2BPVIndividual(b *testing.B) {
	ex, data := bpvData(b, getSuite(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SolveIndividual(data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 3: sensitivity decomposition ----

func BenchmarkFig3Sensitivities(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		bpv.SensitivitiesAt(s.VS.NMOS, device.NMOS, 600e-9, 40e-9, bpv.Targets{Vdd: 0.9})
	}
}

// ---- Table III / Fig. 4: device-level MC sample ----

func benchDeviceSample(b *testing.B, m core.StatModel) {
	tg := bpv.Targets{Vdd: 0.9}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.EvalVec(m.SampleDevice(rng, device.NMOS, 600e-9, 40e-9))
	}
}

func BenchmarkTable3DeviceSampleVS(b *testing.B)     { benchDeviceSample(b, getSuite(b).VS) }
func BenchmarkTable3DeviceSampleGolden(b *testing.B) { benchDeviceSample(b, getSuite(b).Golden) }

func BenchmarkFig4Ellipse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.5*xs[i] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.ConfidenceEllipse(xs, ys, 3)
	}
}

// ---- Fig. 5 / Fig. 6 / Table IV NAND2: one gate-delay MC sample ----

func benchInvDelay(b *testing.B, m core.StatModel) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bch := circuits.InverterFO(3, 0.9, sz, m.Statistical(rng))
		res, err := bch.Ckt.Transient(spice.TranOpts{Stop: 560e-12, Step: 1.5e-12})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := measure.PairDelay(res, bch.In, bch.Out, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5InvDelayVS(b *testing.B)     { benchInvDelay(b, getSuite(b).VS) }
func BenchmarkFig5InvDelayGolden(b *testing.B) { benchInvDelay(b, getSuite(b).Golden) }

func BenchmarkFig6LeakageOP(b *testing.B) {
	s := getSuite(b)
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bch := circuits.InverterFO(3, 0.9, sz, s.VS.Statistical(rng))
		bch.Ckt.SetVSource(bch.VinSrc, spice.DC(0))
		op, err := bch.Ckt.OP()
		if err != nil {
			b.Fatal(err)
		}
		measure.Leakage(op, bch.VddSrc)
	}
}

func benchNAND2Delay(b *testing.B, m core.StatModel, vdd float64) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bch := circuits.NAND2FO(3, vdd, sz, m.Statistical(rng))
		res, err := bch.Ckt.Transient(spice.TranOpts{Stop: 560e-12, Step: 1.5e-12})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := measure.PairDelay(res, bch.In, bch.Out, vdd); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 7 and the NAND2 row of Table IV.
func BenchmarkFig7NAND2VS(b *testing.B)       { benchNAND2Delay(b, getSuite(b).VS, 0.9) }
func BenchmarkFig7NAND2Golden(b *testing.B)   { benchNAND2Delay(b, getSuite(b).Golden, 0.9) }
func BenchmarkFig7NAND2LowVddVS(b *testing.B) { benchNAND2Delay(b, getSuite(b).VS, 0.55) }
func BenchmarkTable4NAND2VS(b *testing.B)     { benchNAND2Delay(b, getSuite(b).VS, 0.9) }
func BenchmarkTable4NAND2Golden(b *testing.B) { benchNAND2Delay(b, getSuite(b).Golden, 0.9) }

// ---- Fig. 8 / Table IV DFF: one setup-time bisection ----

func benchSetup(b *testing.B, m core.StatModel) {
	opts := measure.DefaultSetupOpts()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ff := circuits.NewDFF(0.9, circuits.DefaultDFFSizing(), m.Statistical(rng))
		if _, err := measure.SetupTime(ff, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SetupVS(b *testing.B)     { benchSetup(b, getSuite(b).VS) }
func BenchmarkFig8SetupGolden(b *testing.B) { benchSetup(b, getSuite(b).Golden) }
func BenchmarkTable4DFFVS(b *testing.B)     { benchSetup(b, getSuite(b).VS) }
func BenchmarkTable4DFFGolden(b *testing.B) { benchSetup(b, getSuite(b).Golden) }

// ---- Fig. 9 / Table IV SRAM: one butterfly + SNM ----

func benchSRAM(b *testing.B, m core.StatModel) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := circuits.NewSRAMCell(0.9, circuits.DefaultSRAMSizing(), m.Statistical(rng))
		l, r, err := cell.Butterfly(false, 61)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := measure.SNM(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9SRAMVS(b *testing.B)       { benchSRAM(b, getSuite(b).VS) }
func BenchmarkFig9SRAMGolden(b *testing.B)   { benchSRAM(b, getSuite(b).Golden) }
func BenchmarkTable4SRAMVS(b *testing.B)     { benchSRAM(b, getSuite(b).VS) }
func BenchmarkTable4SRAMGolden(b *testing.B) { benchSRAM(b, getSuite(b).Golden) }

// ---- Pooled Monte Carlo engine: rebuild-per-sample vs pooled templates ----
//
// The paired benchmarks behind the pooled-engine speedup claim. Each
// iteration does identical per-sample work — statistical device draw,
// fixed-step transient, pair delay — and the variants differ only in the
// engine: Rebuild constructs the bench from scratch (the pre-pooling
// per-sample cost), Pooled re-stamps a per-worker template (bit-identical
// delays, ~no allocation), PooledFast adds the carried-Jacobian fast solver
// (delays match to the fast tolerance floor).

func pooledBenchSizing() circuits.Sizing {
	return circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
}

func benchPooledGateDelay(b *testing.B, bch *circuits.PooledGate, m core.StatModel, vdd float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bch.Restat(m.Statistical(rng))
		res, err := bch.Transient(560e-12, 1.5e-12)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := measure.PairDelay(res, bch.In, bch.Out, vdd); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPooledInv(b *testing.B, fast bool) {
	m := core.DefaultStatVS()
	bch, err := circuits.NewPooledInverterFO(3, 0.9, pooledBenchSizing(), m.Nominal(), fast)
	if err != nil {
		b.Fatal(err)
	}
	benchPooledGateDelay(b, bch, m, 0.9)
}

func benchPooledNand2(b *testing.B, fast bool) {
	m := core.DefaultStatVS()
	bch, err := circuits.NewPooledNAND2FO(3, 0.9, pooledBenchSizing(), m.Nominal(), fast)
	if err != nil {
		b.Fatal(err)
	}
	benchPooledGateDelay(b, bch, m, 0.9)
}

func BenchmarkMCInvFO3Rebuild(b *testing.B)      { benchInvDelay(b, core.DefaultStatVS()) }
func BenchmarkMCInvFO3Pooled(b *testing.B)       { benchPooledInv(b, false) }
func BenchmarkMCInvFO3PooledFast(b *testing.B)   { benchPooledInv(b, true) }
func BenchmarkMCNand2FO3Rebuild(b *testing.B)    { benchNAND2Delay(b, core.DefaultStatVS(), 0.9) }
func BenchmarkMCNand2FO3Pooled(b *testing.B)     { benchPooledNand2(b, false) }
func BenchmarkMCNand2FO3PooledFast(b *testing.B) { benchPooledNand2(b, true) }

// ---- Ablations (DESIGN.md §5) ----

// Raw model evaluation cost: the purest form of the paper's Table IV claim
// that the ultra-compact VS model is cheaper per evaluation.
func benchRawEval(b *testing.B, d device.Device) {
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v := 0.9 * float64(i%16) / 15
		sink += d.Eval(v, 0.9, 0, 0).Id
	}
	_ = sink
}

func BenchmarkAblationRawEvalVS(b *testing.B) {
	n := vsmodel.NMOS40(1e-6)
	benchRawEval(b, &n)
}

func BenchmarkAblationRawEvalGolden(b *testing.B) {
	n := bsim.NMOS40(1e-6)
	benchRawEval(b, &n)
}

// Transient integrator ablation: trapezoidal vs backward Euler on the same
// inverter bench.
func benchIntegrator(b *testing.B, trap bool) {
	s := getSuite(b)
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	bch := circuits.InverterFO(3, 0.9, sz, s.VS.Nominal())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bch.Ckt.Transient(spice.TranOpts{Stop: 560e-12, Step: 1.5e-12, Trap: trap}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTranBE(b *testing.B)   { benchIntegrator(b, false) }
func BenchmarkAblationTranTrap(b *testing.B) { benchIntegrator(b, true) }

// α2=α3 constraint ablation: constrained vs unconstrained joint solve.
func BenchmarkAblationBPVUnconstrained(b *testing.B) {
	ex, data := bpvData(b, getSuite(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SolveJointUnconstrained(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Monte Carlo driver overhead.
func BenchmarkAblationMCDriver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := montecarlo.Scalars(64, 1, 0, func(idx int, rng *rand.Rand) (float64, error) {
			return rng.NormFloat64(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Dense LU solve at MNA-typical sizes.
func BenchmarkAblationLUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 16
	a := linalg.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu, err := linalg.NewLU(a)
		if err != nil {
			b.Fatal(err)
		}
		lu.Solve(rhs)
	}
}

// Adaptive vs fixed-step transient on the same inverter bench: the adaptive
// controller spends steps only on edges.
func BenchmarkAblationTranAdaptive(b *testing.B) {
	s := getSuite(b)
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	bch := circuits.InverterFO(3, 0.9, sz, s.VS.Nominal())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := bch.Ckt.TransientAdaptive(spice.AdaptiveOpts{
			Stop: 560e-12, MaxStep: 8e-12, MinStep: 0.2e-12, TolV: 2e-3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
