// Command ivcheck prints the nominal figures of merit and I-V curves of the
// Virtual Source and golden 40-nm cards side by side — a quick sanity view
// of the two model families the reproduction compares.
//
// Usage:
//
//	ivcheck [-w 1u] [-l 40n] [-vdd 0.9] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"

	"math"

	"vstat/internal/bsim"
	"vstat/internal/device"
	"vstat/internal/spice"
	"vstat/internal/vsmodel"
)

type entry struct {
	name string
	d    device.Device
}

func main() {
	wFlag := flag.String("w", "1u", "drawn width")
	lFlag := flag.String("l", "40n", "drawn length")
	vdd := flag.Float64("vdd", 0.9, "supply voltage")
	sweep := flag.Bool("sweep", false, "print full Id-Vg and Id-Vd sweeps")
	flag.Parse()

	w, err := spice.ParseValue(*wFlag)
	if err != nil {
		fatal(err)
	}
	l, err := spice.ParseValue(*lFlag)
	if err != nil {
		fatal(err)
	}

	nv := vsmodel.NMOS40(w).WithGeometry(w, l)
	pv := vsmodel.PMOS40(w).WithGeometry(w, l)
	nb := bsim.NMOS40(w).WithGeometry(w, l)
	pb := bsim.PMOS40(w).WithGeometry(w, l)
	devs := []entry{
		{"VS-NMOS", &nv}, {"GOLD-NMOS", &nb},
		{"VS-PMOS", &pv}, {"GOLD-PMOS", &pb},
	}

	um := w / 1e-6
	fmt.Printf("W=%.3g m, L=%.3g m, Vdd=%.2f V\n", w, l, *vdd)
	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n",
		"model", "Ion uA/um", "Ioff nA/um", "Ilin uA/um", "Cgg fF", "gm mS")
	for _, m := range devs {
		pol := m.d.Kind().Polarity()
		ion := pol * m.d.Eval(pol**vdd, pol**vdd, 0, 0).Id
		ioff := pol * m.d.Eval(pol**vdd, 0, 0, 0).Id
		ilin := pol * m.d.Eval(pol*0.05, pol**vdd, 0, 0).Id
		cgg := device.Cgg(m.d, 0, pol**vdd, 0, 0)
		gm := math.Abs(device.Gm(m.d, pol**vdd, pol**vdd, 0, 0))
		fmt.Printf("%-10s %12.1f %12.2f %12.1f %12.3f %12.3f\n",
			m.name, ion*1e6/um, ioff*1e9/um, ilin*1e6/um, cgg*1e15, gm*1e3)
	}

	if !*sweep {
		return
	}
	printSweep := func(title string, bias func(v float64, d device.Device, pol float64) float64) {
		fmt.Printf("\n%s:\n%-8s", title, "V")
		for _, m := range devs {
			fmt.Printf(" %-12s", m.name)
		}
		fmt.Println()
		for v := 0.0; v <= *vdd+1e-9; v += *vdd / 18 {
			fmt.Printf("%-8.3f", v)
			for _, m := range devs {
				fmt.Printf(" %-12.4e", bias(v, m.d, m.d.Kind().Polarity()))
			}
			fmt.Println()
		}
	}
	printSweep("Id-Vg at Vds=Vdd (A)", func(v float64, d device.Device, pol float64) float64 {
		return pol * d.Eval(pol**vdd, pol*v, 0, 0).Id
	})
	printSweep("Id-Vd at Vg=Vdd (A)", func(v float64, d device.Device, pol float64) float64 {
		return pol * d.Eval(pol*v, pol**vdd, 0, 0).Id
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ivcheck:", err)
	os.Exit(1)
}
