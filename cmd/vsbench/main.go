// Command vsbench profiles the pooled Monte Carlo engine and writes a
// machine-readable perf record. Each MC unit (INV FO3 delay, NAND2 FO3
// delay, DFF setup time, SRAM SNM) runs n pooled samples while measuring
// wall time, heap traffic, and the solver-effort counters, then the whole
// record lands in BENCH_mc.json.
//
// Usage:
//
//	vsbench [-n 64] [-workers 1] [-mode exact|fast|both] [-core dense|sparse|both] [-lanes 0,8] [-out BENCH_mc.json]
//
// The default single worker keeps the per-sample allocation figures free of
// scheduler noise; raise -workers to measure parallel throughput instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/experiments"
	"vstat/internal/lifecycle"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	obstrace "vstat/internal/obs/trace"
	"vstat/internal/shard"
	"vstat/internal/spice"
	"vstat/internal/vsmodel"
)

// distRecord summarizes one observability histogram (per-sample Newton
// iterations or per-phase nanoseconds) captured by the instrumented
// distribution pass.
type distRecord struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func distFrom(h obs.HistSnap) distRecord {
	return distRecord{
		Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
}

// unitRecord is one (unit, linear core, mode) row of BENCH_mc.json.
type unitRecord struct {
	Unit                 string  `json:"unit"`
	Mode                 string  `json:"mode"`
	Kernel               string  `json:"kernel,omitempty"` // VS-model backend of every device in the row (-kernel)
	LinearCore           string  `json:"linear_core"`
	MatrixN              int     `json:"matrix_n"`
	MatrixNNZ            int     `json:"matrix_nnz"`
	FillRatio            float64 `json:"nnz_fill_ratio"`
	Samples              int     `json:"samples"`
	Workers              int     `json:"workers"`
	NsPerSample          float64 `json:"ns_per_sample"`
	BytesPerSample       float64 `json:"bytes_per_sample"`
	AllocsPerSample      float64 `json:"allocs_per_sample"`
	NewtonItersPerStep   float64 `json:"newton_iters_per_step"`
	JacRefreshPerStep    float64 `json:"jac_refresh_per_step"`
	NewtonItersPerSample float64 `json:"newton_iters_per_sample"`
	TranStepsPerSample   float64 `json:"tran_steps_per_sample"`
	Rescues              int64   `json:"rescues"`

	// Batched-engine rows only (-lanes widths above 0): the lockstep lane
	// width, the run's average lane occupancy (filled lanes over lanes
	// offered across all batches), and the lanes evicted to the scalar path.
	Lanes            int     `json:"lanes,omitempty"`
	LaneOccupancyPct float64 `json:"lane_occupancy_pct,omitempty"`
	LanesEvicted     int64   `json:"lanes_evicted,omitempty"`

	// Sharded-coordinator rows only (-shard-size above 0): the index-range
	// shard count and size, the in-process loopback endpoints dispatched
	// to, and the coordinator's attempt accounting (internal/shard.Stats).
	Shards          int   `json:"shards,omitempty"`
	ShardSize       int   `json:"shard_size,omitempty"`
	ShardEndpoints  int   `json:"shard_endpoints,omitempty"`
	ShardDispatched int64 `json:"shard_dispatched,omitempty"`
	ShardRetried    int64 `json:"shard_retried,omitempty"`
	ShardSpeculated int64 `json:"shard_speculated,omitempty"`
	ShardDuplicates int64 `json:"shard_duplicates,omitempty"`
	ShardLost       int64 `json:"shard_lost,omitempty"`

	// Run health (see montecarlo.RunReport).
	Attempted  int              `json:"attempted"`
	Succeeded  int              `json:"succeeded"`
	Failed     int              `json:"failed"`
	Panics     int              `json:"panics,omitempty"`
	RescuedBy  map[string]int64 `json:"rescued_by_stage,omitempty"`
	FailedIdxs []int            `json:"failed_sample_idxs,omitempty"`

	// Distribution records from the instrumented second pass (same seed as
	// the timed pass, which runs uninstrumented so the perf figures stay
	// comparable across revisions).
	NewtonItersDist *distRecord           `json:"newton_iters_dist,omitempty"`
	PhaseNsDist     map[string]distRecord `json:"phase_ns_dist,omitempty"`
}

// lifecycleRecord captures the run-lifecycle overhead figures: what
// checkpointing and per-sample budget enforcement cost on the hot path.
type lifecycleRecord struct {
	// Checkpoint.Record cost per sample (no flush), microbenched on a
	// 1000-sample float64 checkpoint.
	CheckpointRecordNsPerSample float64 `json:"checkpoint_record_ns_per_sample"`
	// One atomic write-rename flush of a 1000-sample checkpoint state.
	CheckpointFlushNsPer1k float64 `json:"checkpoint_flush_ns_per_1k_samples"`
	// Armed-minus-unarmed wall time per sample on the INV FO3 delay MC:
	// the cooperative budget checks' cost on the real hot path. Noise can
	// drive small negative values; treat anything near zero as free.
	BudgetCheckNsPerSample float64 `json:"budget_check_ns_per_sample_inv_delay"`
}

// benchFile is the whole BENCH_mc.json document.
type benchFile struct {
	Generated   string            `json:"generated"`
	GoVersion   string            `json:"go_version"`
	Vdd         float64           `json:"vdd"`
	Seed        int64             `json:"seed"`
	ModelKernel string            `json:"model_kernel"`          // resolved -kernel used by the unit rows
	Interrupt   string            `json:"interrupted,omitempty"` // set when the run was cancelled and the rows below are partial
	Lifecycle   *lifecycleRecord  `json:"lifecycle,omitempty"`
	ModelEval   []modelEvalRecord `json:"model_eval,omitempty"`
	Units       []unitRecord      `json:"units"`
}

// modelEvalRecord is one row of the raw model-kernel microbench: the cost of
// one full derivative-bundle evaluation (current, charges, and every
// first-order derivative, internal series-resistance solve included)
// through the named VS kernel. Lanes 1 times the scalar EvalDerivs4 entry
// point; higher widths time the SoA batch kernel with every lane Full.
type modelEvalRecord struct {
	Kernel      string  `json:"kernel"`
	Lanes       int     `json:"lanes"`
	Evals       int64   `json:"evals"`
	NsPerEval   float64 `json:"ns_per_eval"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// measureModelEval times nEvals derivative-bundle evaluations of one VS
// kernel over a fixed gate/drain bias grid on the 40-nm NMOS card, one
// Pelgrom-perturbed statistical instance per lane so the batch rows carry
// the same per-lane parameter diversity as a real lockstep MC.
func measureModelEval(kern vsmodel.Kernel, lanes int, vdd float64, nEvals int) modelEvalRecord {
	rng := rand.New(rand.NewSource(40613))
	inst := func() device.Device {
		p := vsmodel.NMOS40(300e-9).WithGeometry(300e-9, 40e-9)
		d := device.Deltas{
			DVT0:  rng.NormFloat64() * 0.03,
			DL:    rng.NormFloat64() * 2e-9,
			DW:    rng.NormFloat64() * 10e-9,
			DMu:   rng.NormFloat64() * 0.002,
			DCinv: rng.NormFloat64() * 0.0005,
		}
		return vsmodel.ForKernel(p, kern).(device.Varier).WithDeltas(d)
	}
	const gridN = 16 // 16x16 gate/drain plane, vb = 0
	bias := make([][2]float64, 0, gridN*gridN)
	for i := 0; i < gridN; i++ {
		for j := 0; j < gridN; j++ {
			bias = append(bias, [2]float64{
				vdd * float64(i) / (gridN - 1),
				vdd * float64(j) / (gridN - 1),
			})
		}
	}
	rec := modelEvalRecord{Kernel: kern.Resolve().String(), Lanes: lanes}
	var sink float64
	if lanes <= 1 {
		nd := inst().(device.NativeDerivs)
		run := func(n int) {
			for e := 0; e < n; e++ {
				b := bias[e%len(bias)]
				der := nd.EvalDerivs4(b[1], b[0], 0, 0)
				sink += der.Id
			}
		}
		run(len(bias)) // warm up (tape bind, branch predictors)
		runtime.GC()
		t0 := time.Now()
		run(nEvals)
		rec.Evals = int64(nEvals)
		rec.NsPerEval = float64(time.Since(t0).Nanoseconds()) / float64(nEvals)
	} else {
		proto := inst()
		bd := device.NewBatch(lanes, proto)
		bd.SetLane(0, proto)
		for l := 1; l < lanes; l++ {
			bd.SetLane(l, inst())
		}
		vd := make([]float64, lanes)
		vg := make([]float64, lanes)
		vs := make([]float64, lanes)
		vb := make([]float64, lanes)
		mode := make([]device.EvalMode, lanes)
		for l := range mode {
			mode[l] = device.EvalFull
		}
		out := device.NewDerivsBatch(lanes)
		run := func(calls int) {
			for e := 0; e < calls; e++ {
				b := bias[e%len(bias)]
				for l := 0; l < lanes; l++ {
					vg[l], vd[l] = b[0], b[1]
				}
				bd.EvalDerivsBatch(vd, vg, vs, vb, mode, out)
				sink += out.Id[0]
			}
		}
		calls := (nEvals + lanes - 1) / lanes
		run(len(bias)) // warm up
		runtime.GC()
		t0 := time.Now()
		run(calls)
		rec.Evals = int64(calls) * int64(lanes)
		rec.NsPerEval = float64(time.Since(t0).Nanoseconds()) / float64(rec.Evals)
	}
	if rec.NsPerEval > 0 {
		rec.EvalsPerSec = 1e9 / rec.NsPerEval
	}
	_ = sink
	return rec
}

// statsPool collects solver-counter readers from the per-worker templates so
// the run can be summed after the MC drains.
type statsPool struct {
	mu      sync.Mutex
	readers []func() spice.SolverStats
}

func (p *statsPool) add(f func() spice.SolverStats) {
	p.mu.Lock()
	p.readers = append(p.readers, f)
	p.mu.Unlock()
}

func (p *statsPool) total() spice.SolverStats {
	var t spice.SolverStats
	for _, f := range p.readers {
		t = t.Add(f())
	}
	return t
}

// unitFn runs one n-sample pooled MC and reports the summed solver stats
// plus the run's health report. ctx cancels the run mid-unit (claiming
// stops, in-flight samples drain); opts carries the failure policy plus the
// lifecycle knobs (per-sample budget, hang watchdog, checkpoint). A non-nil
// mi attaches per-sample phase timing and Newton-work histograms (the
// distribution pass); nil keeps the hot path on its nil-scope no-op
// branches (the timed pass). core selects the linear-algebra backend of
// every worker template, and mr (when non-nil) receives the template's MNA
// matrix shape.
type unitFn func(ctx context.Context, n int, seed int64, workers int, opts montecarlo.RunOpts, fast bool, core spice.LinearCore, mi *experiments.MCInstr, mr *matRec) (spice.SolverStats, montecarlo.RunReport, error)

// matRec captures the MNA matrix shape of a unit's template circuit, filled
// once by the first worker that builds one (all workers share the topology).
type matRec struct {
	mu     sync.Mutex
	set    bool
	n, nnz int
}

func (m *matRec) record(n, nnz int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if !m.set {
		m.set = true
		m.n, m.nnz = n, nnz
	}
	m.mu.Unlock()
}

// instrState pairs a pooled bench with its per-worker recording handle
// while keeping the bench's rescue counters visible to the run report.
type instrState[B montecarlo.RescueReporter] struct {
	b  B
	so *experiments.SampleObs
}

// RescueCounts forwards the bench counters (montecarlo.RescueReporter).
func (s instrState[B]) RescueCounts() map[string]int64 { return s.b.RescueCounts() }

// ArmSample forwards the per-sample lifecycle arming to the wrapped bench
// (montecarlo.SampleArmer), so budgeted runs kill over-budget samples.
func (s instrState[B]) ArmSample(ctx context.Context, bud lifecycle.Budget) {
	if a, ok := any(s.b).(montecarlo.SampleArmer); ok {
		a.ArmSample(ctx, bud)
	}
}

// Gate transient window, matching the experiments' delay MCs.
const (
	gateTranStop = 560e-12
	gateTranStep = 1.5e-12
)

func gateUnit(m core.StatModel, vdd float64, sz circuits.Sizing,
	build func(vdd float64, sz circuits.Sizing, nominal circuits.Factory, fast bool) (*circuits.PooledGate, error)) unitFn {
	return func(ctx context.Context, n int, seed int64, workers int, opts montecarlo.RunOpts, fast bool, core spice.LinearCore, mi *experiments.MCInstr, mr *matRec) (spice.SolverStats, montecarlo.RunReport, error) {
		var pool statsPool
		_, rep, err := montecarlo.MapPooledReportCtx(ctx, n, seed, workers, opts,
			func(int) (instrState[*circuits.PooledGate], error) {
				b, err := build(vdd, sz, m.Nominal(), fast)
				if err != nil {
					return instrState[*circuits.PooledGate]{}, err
				}
				b.Ckt.LinearCore = core
				mn, nnz, _ := b.Ckt.MatrixInfo()
				mr.record(mn, nnz)
				pool.add(b.Ckt.Stats)
				so := mi.NewWorker()
				b.SetObs(so.Scope())
				return instrState[*circuits.PooledGate]{b: b, so: so}, nil
			},
			func(st instrState[*circuits.PooledGate], idx int, rng *rand.Rand) (float64, error) {
				b, so := st.b, st.so
				sc := so.Scope()
				b.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				b.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				res, err := b.Transient(gateTranStop, gateTranStep)
				if err != nil {
					so.End(b.Ckt.Stats())
					return 0, err
				}
				sc.Enter(obs.PhaseMeasure)
				d, derr := measure.PairDelay(res, b.In, b.Out, vdd)
				sc.Exit()
				so.End(b.Ckt.Stats())
				return d, derr
			})
		return pool.total(), rep, err
	}
}

// shardSide receives the coordinator accounting of a sharded unit's run
// (mirrors batchSide for the lockstep rows): shard tiling, endpoint count,
// and the dispatch/retry/speculation counters.
type shardSide struct {
	mu        sync.Mutex
	shards    int
	size, eps int
	stats     shard.Stats
}

func (s *shardSide) set(shards, size, eps int, st shard.Stats) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shards, s.size, s.eps, s.stats = shards, size, eps, st
	s.mu.Unlock()
}

func (s *shardSide) apply(rec *unitRecord) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Shards = s.shards
	rec.ShardSize = s.size
	rec.ShardEndpoints = s.eps
	rec.ShardDispatched = s.stats.Dispatched
	rec.ShardRetried = s.stats.Retried
	rec.ShardSpeculated = s.stats.Speculated
	rec.ShardDuplicates = s.stats.Duplicates
	rec.ShardLost = s.stats.Lost
}

// shardGateUnit routes a gate delay MC through the internal/shard
// coordinator over in-process loopback endpoints: the same physics as
// gateUnit, but claimed in index-range shards, dispatched, envelope-
// validated, and merged. The merged row is bit-identical to the plain
// pooled run at any shard size; the coordinator accounting lands in the
// record's shard_* fields via side. Each endpoint runs a single-worker
// engine, so total parallelism matches the endpoint count and the
// per-sample alloc figures stay comparable to the scalar rows.
func shardGateUnit(m core.StatModel, vdd float64, sz circuits.Sizing, shardSize, endpoints int, side *shardSide,
	build func(vdd float64, sz circuits.Sizing, nominal circuits.Factory, fast bool) (*circuits.PooledGate, error)) unitFn {
	return func(ctx context.Context, n int, seed int64, workers int, opts montecarlo.RunOpts, fast bool, lcore spice.LinearCore, mi *experiments.MCInstr, mr *matRec) (spice.SolverStats, montecarlo.RunReport, error) {
		if opts.Checkpoint != nil {
			return spice.SolverStats{}, montecarlo.RunReport{}, fmt.Errorf("sharded rows cannot checkpoint (shards are the retry unit)")
		}
		var pool statsPool
		hash := montecarlo.ConfigHash("vsbench-shard", seed, n, vdd, lcore.String(), fast)
		exec := shard.NewExecutor(hash, workers,
			func(int) (instrState[*circuits.PooledGate], error) {
				b, err := build(vdd, sz, m.Nominal(), fast)
				if err != nil {
					return instrState[*circuits.PooledGate]{}, err
				}
				b.Ckt.LinearCore = lcore
				mn, nnz, _ := b.Ckt.MatrixInfo()
				mr.record(mn, nnz)
				pool.add(b.Ckt.Stats)
				so := mi.NewWorker()
				b.SetObs(so.Scope())
				return instrState[*circuits.PooledGate]{b: b, so: so}, nil
			},
			func(st instrState[*circuits.PooledGate], idx int, rng *rand.Rand) (float64, error) {
				b, so := st.b, st.so
				sc := so.Scope()
				b.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				b.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				res, err := b.Transient(gateTranStop, gateTranStep)
				if err != nil {
					so.End(b.Ckt.Stats())
					return 0, err
				}
				sc.Enter(obs.PhaseMeasure)
				d, derr := measure.PairDelay(res, b.In, b.Out, vdd)
				sc.Exit()
				so.End(b.Ckt.Stats())
				return d, derr
			})
		eps := make([]shard.Endpoint[float64], endpoints)
		for i := range eps {
			eps[i] = shard.Endpoint[float64]{
				Name:      fmt.Sprintf("loopback-%d", i),
				Transport: shard.Loopback[float64]{Exec: exec},
			}
		}
		scfg := shard.Config{
			N:            n,
			Seed:         seed,
			ConfigHash:   hash,
			ShardSize:    shardSize,
			Bench:        "vsbench",
			SampleBudget: opts.Budget,
			HangGrace:    opts.HangGrace,
		}
		if opts.Policy.OnFailure == montecarlo.SkipAndRecord {
			scfg.MaxFailFrac = opts.Policy.MaxFailFrac
			if scfg.MaxFailFrac <= 0 {
				scfg.MaxFailFrac = 1.0 // uncapped SkipAndRecord
			}
		}
		res, err := shard.Run(ctx, scfg, eps, exec)
		if err != nil {
			return spice.SolverStats{}, montecarlo.RunReport{}, err
		}
		side.set(res.Shards, shardSize, endpoints, res.Stats)
		return pool.total(), res.Report, nil
	}
}

// batchSide receives the lane accounting of a batched unit's timed pass:
// lanes filled vs lanes offered across all batches, and the lanes evicted
// from the lockstep path to the scalar fallback.
type batchSide struct {
	mu                       sync.Mutex
	filled, offered, evicted int64
}

func (s *batchSide) set(filled, offered, evicted int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.filled, s.offered, s.evicted = filled, offered, evicted
	s.mu.Unlock()
}

func (s *batchSide) read() (occupancyPct float64, evicted int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.offered > 0 {
		occupancyPct = 100 * float64(s.filled) / float64(s.offered)
	}
	return occupancyPct, s.evicted
}

// batchInstrState pairs one worker's lane batch with its recording handle,
// forwarding the per-lane lifecycle arming and checkpoint rescue deltas.
type batchInstrState struct {
	b  *circuits.PooledGateBatch
	so *experiments.SampleObs
}

// RescueCounts forwards the summed lane counters (montecarlo.RescueReporter).
func (s batchInstrState) RescueCounts() map[string]int64 { return s.b.RescueCounts() }

// LaneRescueCounts forwards one lane's counters (montecarlo.LaneRescueReporter).
func (s batchInstrState) LaneRescueCounts(l int) map[string]int64 { return s.b.LaneRescueCounts(l) }

// ArmLane forwards the per-lane context and budget (montecarlo.BatchSampleArmer).
func (s batchInstrState) ArmLane(l int, ctx context.Context, bud lifecycle.Budget) {
	s.b.ArmLane(l, ctx, bud)
}

// gateBatchUnit is gateUnit's K-lane lockstep twin: each worker owns one
// PooledGateBatch and the engine fills its lanes from the shared index
// stream, so up to `lanes` statistical samples share one SoA device
// evaluation per Newton round while every waveform stays bit-identical to
// the scalar rows. side (when non-nil) receives the run's lane accounting.
func gateBatchUnit(m core.StatModel, vdd float64, sz circuits.Sizing, lanes int, side *batchSide,
	build func(vdd float64, sz circuits.Sizing, nominal circuits.Factory, fast bool) (*circuits.PooledGate, error)) unitFn {
	return func(ctx context.Context, n int, seed int64, workers int, opts montecarlo.RunOpts, fast bool, lcore spice.LinearCore, mi *experiments.MCInstr, mr *matRec) (spice.SolverStats, montecarlo.RunReport, error) {
		var pool statsPool
		var filled, offered atomic.Int64
		var bm sync.Mutex
		var benches []*circuits.PooledGateBatch
		_, rep, err := montecarlo.MapPooledBatchReportCtx(ctx, n, seed, workers, lanes, opts,
			func(int) (batchInstrState, error) {
				b, err := circuits.NewPooledGateBatch(lanes, func() (*circuits.PooledGate, error) {
					p, err := build(vdd, sz, m.Nominal(), fast)
					if err != nil {
						return nil, err
					}
					p.Ckt.LinearCore = lcore
					return p, nil
				})
				if err != nil {
					return batchInstrState{}, err
				}
				mn, nnz, _ := b.Lanes[0].Ckt.MatrixInfo()
				mr.record(mn, nnz)
				for _, p := range b.Lanes {
					pool.add(p.Ckt.Stats)
				}
				bm.Lock()
				benches = append(benches, b)
				bm.Unlock()
				so := mi.NewWorker()
				b.SetObs(so.Scope())
				return batchInstrState{b: b, so: so}, nil
			},
			func(st batchInstrState, idxs []int, rngs []*rand.Rand, out []float64, errs []error) {
				b, so := st.b, st.so
				sc := so.Scope()
				live := len(idxs)
				filled.Add(int64(live))
				offered.Add(int64(lanes))
				sc.Enter(obs.PhaseRestamp)
				for j, idx := range idxs {
					b.SetLaneSample(j, idx)
					b.Restat(j, so.Factory(m.Statistical(rngs[j])))
				}
				sc.Exit()
				outs := b.TransientBatch(live, gateTranStop, gateTranStep)
				sc.Enter(obs.PhaseMeasure)
				for j := range idxs {
					if outs[j].Err != nil {
						errs[j] = outs[j].Err
						continue
					}
					p := b.Lanes[j]
					out[j], errs[j] = measure.PairDelay(&p.Res, p.In, p.Out, vdd)
				}
				sc.Exit()
				var sum spice.SolverStats
				for _, p := range b.Lanes {
					sum = sum.Add(p.Ckt.Stats())
				}
				so.EndBatch(live, sum)
			})
		var evicted int64
		bm.Lock()
		for _, b := range benches {
			evicted += b.Evictions()
		}
		bm.Unlock()
		side.set(filled.Load(), offered.Load(), evicted)
		var occ float64
		if offered.Load() > 0 {
			occ = 100 * float64(filled.Load()) / float64(offered.Load())
		}
		mi.RecordBatchRun(evicted, occ)
		return pool.total(), rep, err
	}
}

func dffUnit(m core.StatModel, vdd float64) unitFn {
	return func(ctx context.Context, n int, seed int64, workers int, runOpts montecarlo.RunOpts, fast bool, core spice.LinearCore, mi *experiments.MCInstr, mr *matRec) (spice.SolverStats, montecarlo.RunReport, error) {
		opts := measure.DefaultSetupOpts()
		var pool statsPool
		_, rep, err := montecarlo.MapPooledReportCtx(ctx, n, seed, workers, runOpts,
			func(int) (instrState[*circuits.PooledDFF], error) {
				ff := circuits.NewPooledDFF(vdd, circuits.DefaultDFFSizing(), m.Nominal(), fast)
				ff.Ckt.LinearCore = core
				mn, nnz, _ := ff.Ckt.MatrixInfo()
				mr.record(mn, nnz)
				pool.add(ff.Ckt.Stats)
				so := mi.NewWorker()
				ff.SetObs(so.Scope())
				return instrState[*circuits.PooledDFF]{b: ff, so: so}, nil
			},
			func(st instrState[*circuits.PooledDFF], idx int, rng *rand.Rand) (float64, error) {
				ff, so := st.b, st.so
				sc := so.Scope()
				ff.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				ff.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				o := opts
				o.Res, o.Fast = &ff.Res, ff.Fast
				sc.Enter(obs.PhaseMeasure)
				ts, err := measure.SetupTime(ff.DFF, o)
				sc.Exit()
				so.End(ff.Ckt.Stats())
				return ts, err
			})
		return pool.total(), rep, err
	}
}

func sramUnit(m core.StatModel, vdd float64) unitFn {
	const points = 61 // butterfly sweep resolution, matching Fig. 9
	return func(ctx context.Context, n int, seed int64, workers int, opts montecarlo.RunOpts, fast bool, core spice.LinearCore, mi *experiments.MCInstr, mr *matRec) (spice.SolverStats, montecarlo.RunReport, error) {
		var pool statsPool
		_, rep, err := montecarlo.MapPooledReportCtx(ctx, n, seed, workers, opts,
			func(int) (instrState[*circuits.PooledSRAM], error) {
				cell := circuits.NewPooledSRAM(vdd, circuits.DefaultSRAMSizing(), m.Nominal(), points, fast)
				cell.SetLinearCore(core)
				mn, nnz, _ := cell.MatrixInfo()
				mr.record(mn, nnz)
				pool.add(cell.Stats)
				so := mi.NewWorker()
				cell.SetObs(so.Scope())
				return instrState[*circuits.PooledSRAM]{b: cell, so: so}, nil
			},
			func(st instrState[*circuits.PooledSRAM], idx int, rng *rand.Rand) ([2]float64, error) {
				cell, so := st.b, st.so
				sc := so.Scope()
				cell.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				cell.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				rl, rr, err := cell.Butterfly(true)
				if err != nil {
					so.End(cell.Stats())
					return [2]float64{}, err
				}
				sc.Enter(obs.PhaseMeasure)
				read, err := measure.SNM(rl, rr)
				sc.Exit()
				if err != nil {
					so.End(cell.Stats())
					return [2]float64{}, err
				}
				hl, hr, err := cell.Butterfly(false)
				if err != nil {
					so.End(cell.Stats())
					return [2]float64{}, err
				}
				sc.Enter(obs.PhaseMeasure)
				hold, err := measure.SNM(hl, hr)
				sc.Exit()
				so.End(cell.Stats())
				return [2]float64{read.SNM, hold.SNM}, nil
			})
		return pool.total(), rep, err
	}
}

// benchObs carries the cross-unit observability wiring: the shared trace
// sink attached to every distribution pass, the registry currently served
// at /metrics, and the per-(unit, mode) snapshots collected for
// -metrics-out.
type benchObs struct {
	sink  *obs.EventSink
	live  atomic.Pointer[obs.Registry]
	snaps []unitSnapshot
}

// unitSnapshot is one -metrics-out entry: the full registry snapshot of a
// distribution pass.
type unitSnapshot struct {
	Unit    string       `json:"unit"`
	Mode    string       `json:"mode"`
	Metrics obs.Snapshot `json:"metrics"`
}

// benchCkpt is the slice of the generic Checkpoint[T] API runUnit needs
// without knowing a unit's sample type.
type benchCkpt interface {
	montecarlo.CheckpointSink
	Flush() error
	Restored() int
	Report() montecarlo.RunReport
}

// ckOpener returns an open function for a unit whose samples are T: remove
// any stale file unless resuming, then open the typed checkpoint.
func ckOpener[T any]() func(path, hash string, n int, resume bool) (benchCkpt, error) {
	return func(path, hash string, n int, resume bool) (benchCkpt, error) {
		if !resume {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("checkpoint reset: %w", err)
			}
		}
		return montecarlo.OpenCheckpoint[T](path, hash, n, 0)
	}
}

// benchLC bundles the run-lifecycle wiring every unit run shares: the
// cancellable run context, the per-sample budget/watchdog options, and the
// checkpoint directory settings.
type benchLC struct {
	ctx    context.Context
	opts   montecarlo.RunOpts // Policy + Budget + HangGrace; Checkpoint added per unit
	ckDir  string
	resume bool
	vdd    float64
	kernel string // resolved -kernel name, stamped on rows and counter attribution

	// rec/runSpan/traceK drive the -trace-out flight recorder: each
	// scalar-engine unit's distribution pass runs with a trace.MC under a
	// per-unit span parented to runSpan. Never attached to the timed pass
	// (its ns/allocs per sample must stay comparable across revisions).
	rec     *obstrace.Recorder
	runSpan uint64
	traceK  int
}

// runUnit times one unit and turns the raw counters into a record. The
// timed pass always runs uninstrumented so ns/allocs per sample stay
// comparable across revisions; when dist is set, a second pass with the
// same seed re-runs under instrumentation and attaches the Newton-iteration
// and per-phase wall-time distributions. With a checkpoint directory the
// timed pass records every sample to <dir>/<unit>-<core>-<mode>.ckpt.json
// (resumed samples are skipped, so resumed perf figures cover only the
// freshly-run remainder; the distribution pass never checkpoints).
func runUnit(name, mode string, core spice.LinearCore, fn unitFn,
	openCk func(path, hash string, n int, resume bool) (benchCkpt, error),
	n int, seed int64, workers, lanes int, side *batchSide, lc benchLC, dist bool, bo *benchObs) (unitRecord, error) {
	fast := mode == "fast"
	opts := lc.opts
	var ck benchCkpt
	if lc.ckDir != "" && openCk != nil {
		if err := os.MkdirAll(lc.ckDir, 0o755); err != nil {
			return unitRecord{}, fmt.Errorf("checkpoint dir: %w", err)
		}
		suffix := ""
		if lanes > 0 {
			suffix = fmt.Sprintf("-k%d", lanes)
		}
		path := filepath.Join(lc.ckDir, fmt.Sprintf("%s-%s-%s%s.ckpt.json", name, core, mode, suffix))
		hash := montecarlo.ConfigHash(seed, n, lc.vdd, name, core.String(), mode)
		if lanes > 0 {
			hash = montecarlo.ConfigHash(seed, n, lc.vdd, name, core.String(), mode, lanes)
		}
		var err error
		ck, err = openCk(path, hash, n, lc.resume)
		if err != nil {
			return unitRecord{}, err
		}
		opts.Checkpoint = ck
		if r := ck.Restored(); r > 0 {
			fmt.Printf("%-10s %-6s %-5s  resuming: %d of %d samples restored from checkpoint\n",
				name, core, mode, r, n)
		}
	}
	runtime.GC()
	var mr matRec
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	stats, rep, err := fn(lc.ctx, n, seed, workers, opts, fast, core, nil, &mr)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	if ck != nil {
		if ferr := ck.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if err == nil {
			rep = ck.Report() // full-run view: restored + fresh samples
		}
	}
	if err != nil {
		return unitRecord{}, fmt.Errorf("%s (%s, %s): %w", name, mode, core, err)
	}
	rec := unitRecord{
		Unit:                 name,
		Mode:                 mode,
		Kernel:               lc.kernel,
		LinearCore:           core.String(),
		MatrixN:              mr.n,
		MatrixNNZ:            mr.nnz,
		Samples:              n,
		Workers:              workers,
		NsPerSample:          float64(elapsed.Nanoseconds()) / float64(n),
		BytesPerSample:       float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		AllocsPerSample:      float64(after.Mallocs-before.Mallocs) / float64(n),
		NewtonItersPerSample: float64(stats.NewtonIters) / float64(n),
		TranStepsPerSample:   float64(stats.TranSteps) / float64(n),
		Rescues:              stats.Rescues,
	}
	if mr.n > 0 {
		rec.FillRatio = float64(mr.nnz) / (float64(mr.n) * float64(mr.n))
	}
	if lanes > 0 {
		rec.Lanes = lanes
		rec.LaneOccupancyPct, rec.LanesEvicted = side.read()
	}
	if stats.TranSteps > 0 {
		rec.NewtonItersPerStep = float64(stats.NewtonIters) / float64(stats.TranSteps)
		rec.JacRefreshPerStep = float64(stats.JacRefreshes) / float64(stats.TranSteps)
	}
	rec.Attempted, rec.Succeeded, rec.Failed, rec.Panics = rep.Attempted, rep.Succeeded, rep.Failed, rep.Panics
	rec.RescuedBy = rep.Rescued
	for _, f := range rep.Failures {
		rec.FailedIdxs = append(rec.FailedIdxs, f.Idx)
	}
	if dist {
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
		reg := obs.NewRegistry()
		mi := experiments.NewMCInstr(reg)
		mi.Kernel = lc.kernel
		if bo != nil {
			mi.Sink = bo.sink
			bo.live.Store(reg)
		}
		distOpts := lc.opts // never the checkpoint: the pass re-runs every sample
		var unitSpan *obstrace.Span
		if lc.rec != nil && lanes == 0 {
			// The flight recorder covers the scalar-engine units only: the
			// K-lane lockstep path shares solver work across lanes, so
			// per-sample span attribution would be arbitrary there.
			unit := fmt.Sprintf("%s/%s/%s", name, core, mode)
			unitSpan = lc.rec.Start(unit, obstrace.CatExperiment, lc.runSpan)
			distOpts.Trace = obstrace.NewMC(lc.rec, unit, unitSpan.ID(), lc.traceK)
		}
		if _, _, err := fn(lc.ctx, n, seed, workers, distOpts, fast, core, mi, nil); err != nil {
			unitSpan.End()
			return unitRecord{}, fmt.Errorf("%s (%s, %s) distribution pass: %w", name, mode, core, err)
		}
		distOpts.Trace.Finish()
		unitSpan.End()
		snap := reg.Snapshot()
		if bo != nil {
			bo.snaps = append(bo.snaps, unitSnapshot{Unit: name, Mode: mode, Metrics: snap})
		}
		it := distFrom(snap.Find("mc_newton_iters"))
		rec.NewtonItersDist = &it
		rec.PhaseNsDist = make(map[string]distRecord, obs.NumPhases)
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			rec.PhaseNsDist[p.String()] = distFrom(snap.Find("mc_phase_" + p.String() + "_ns"))
		}
	}
	return rec, nil
}

// parseLaneWidths parses the -lanes flag: a comma-separated list of
// lockstep lane widths, where 0 selects the scalar engine.
func parseLaneWidths(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad lane width %q (want a non-negative integer)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no lane widths given")
	}
	return out, nil
}

// measureCheckpointOverhead microbenches the checkpoint hot path: Record
// cost per sample with flushing suppressed, then the cost of one atomic
// write-rename flush of a 1000-sample state.
func measureCheckpointOverhead() (recordNs, flushNs float64, err error) {
	dir, err := os.MkdirTemp("", "vsbench-ck-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	const n = 1000
	ck, err := montecarlo.OpenCheckpoint[float64](
		filepath.Join(dir, "bench.ckpt.json"),
		montecarlo.ConfigHash("vsbench-lifecycle", n), n, 1<<30)
	if err != nil {
		return 0, 0, err
	}
	rescued := map[string]int64{"dc-gmin": 1}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		ck.Record(i, float64(i), rescued, nil)
	}
	recordNs = float64(time.Since(t0).Nanoseconds()) / n
	const flushes = 20
	t0 = time.Now()
	for i := 0; i < flushes; i++ {
		if err := ck.Flush(); err != nil {
			return 0, 0, err
		}
	}
	flushNs = float64(time.Since(t0).Nanoseconds()) / flushes
	return recordNs, flushNs, nil
}

// measureBudgetOverhead runs the INV FO3 delay unit with the same seed —
// unarmed and under a never-binding budget — and reports the per-sample
// wall-time delta the cooperative budget checks cost. Each arm takes the
// minimum of three runs so scheduler and GC noise (far larger than the
// three compares being measured) mostly cancels.
func measureBudgetOverhead(ctx context.Context, inv unitFn, n int, seed int64, workers int) (float64, error) {
	run := func(opts montecarlo.RunOpts) (float64, error) {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			runtime.GC()
			t0 := time.Now()
			_, _, err := inv(ctx, n, seed, workers, opts, false, spice.CoreDense, nil, nil)
			if err != nil {
				return 0, err
			}
			ns := float64(time.Since(t0).Nanoseconds()) / float64(n)
			if rep == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	plain, err := run(montecarlo.RunOpts{})
	if err != nil {
		return 0, err
	}
	armed, err := run(montecarlo.RunOpts{
		Budget: lifecycle.Budget{Wall: time.Hour, MaxNewton: 1 << 40}})
	if err != nil {
		return 0, err
	}
	return armed - plain, nil
}

func main() {
	var (
		n        = flag.Int("n", 64, "Monte Carlo samples per unit")
		workers  = flag.Int("workers", 1, "parallel workers (1 keeps alloc counts clean)")
		mode     = flag.String("mode", "both", "solver path: exact, fast, or both")
		lanesSel = flag.String("lanes", "0,8", "comma-separated lockstep lane widths for the gate units (0 = scalar engine; widths above 0 add batched INV/NAND2 rows)")
		shardSz  = flag.Int("shard-size", 16, "samples per shard for the sharded-coordinator INV/NAND2 rows (0 = skip those rows)")
		shardEps = flag.Int("shard-endpoints", 2, "in-process loopback endpoints for the sharded rows")
		coreSel  = flag.String("core", "both", "linear core: dense, sparse, or both (paired rows per unit)")
		kernSel  = flag.String("kernel", "auto", "VS-model kernel for the MC unit rows: auto, direct, tape, or tape-fast (auto honours VSTAT_MODEL_KERNEL)")
		modelB   = flag.Bool("model-bench", true, "microbench the raw model kernels (direct/tape/tape-fast at lanes 1 and 8) and record them under \"model_eval\" in -out")
		out      = flag.String("out", "BENCH_mc.json", "output JSON path")
		seed     = flag.Int64("seed", 20130318, "master random seed")
		vdd      = flag.Float64("vdd", 0.9, "nominal supply voltage")
		skip     = flag.Bool("skip-failed", false, "isolate failing samples instead of aborting the unit")
		dist     = flag.Bool("dist", true, "run an instrumented second pass per unit and record Newton-iteration and per-phase time distributions")
		failFrac = flag.Float64("max-fail-frac", 0, "with -skip-failed, abort once this failure fraction is exceeded (0 = no cap)")

		timeout       = flag.Duration("timeout", 0, "overall bench deadline (0 = none); on expiry the completed unit rows still land in -out")
		sampleTimeout = flag.Duration("sample-timeout", 0, "per-sample wall-clock budget; an over-budget or hung sample becomes a recorded per-sample failure under -skip-failed")
		hangGrace     = flag.Duration("hang-grace", 0, "how far past -sample-timeout the watchdog lets a wedged sample run before abandoning it (0 = one extra -sample-timeout)")
		ckDir         = flag.String("checkpoint", "", "directory for per-unit checkpoint files written by the timed pass")
		resume        = flag.Bool("resume", false, "resume per-unit checkpoints, re-running only missing samples (their perf figures then cover only the fresh remainder)")
		lifecycleB    = flag.Bool("lifecycle-bench", true, "measure checkpoint and budget-check overheads and record them under \"lifecycle\" in -out")

		metricsOut = flag.String("metrics-out", "", "write the per-unit observability snapshots (JSON) to this path; implies -dist")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file of the distribution passes (per-unit spans + worst-sample flight recorder) to this path; implies -dist; scalar-engine units only")
		traceK     = flag.Int("trace-k", 0, "with -trace-out, keep full span detail for the K worst samples per unit (0 = default 8)")
		trace      = flag.Int("trace", 0, "emit every Nth structured solver trace event to stderr during the distribution passes (0 = off)")
		logLevel   = flag.String("log-level", "warn", "minimum trace event level: debug|info|warn|error")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof and a Prometheus /metrics endpoint on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context; the unit loop below flushes the
	// completed rows (and any per-unit checkpoints) instead of exiting
	// silently.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	bo := &benchObs{}
	if *metricsOut != "" || *trace > 0 || *pprofAddr != "" || *traceOut != "" {
		*dist = true
	}
	if *trace > 0 {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "vsbench: -log-level: %v\n", err)
			os.Exit(2)
		}
		bo.sink = obs.NewEventSink(os.Stderr, lvl, *trace)
	}
	if *pprofAddr != "" {
		// /metrics tracks whichever unit's distribution pass is live.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			reg := bo.live.Load()
			if reg == nil {
				http.Error(w, "no distribution pass has run yet", http.StatusServiceUnavailable)
				return
			}
			reg.Handler().ServeHTTP(w, r)
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vsbench: pprof server:", err)
			}
		}()
		fmt.Printf("serving /debug/pprof and /metrics on http://%s\n", *pprofAddr)
	}

	pol := montecarlo.Policy{}
	if *skip {
		pol = montecarlo.Policy{OnFailure: montecarlo.SkipAndRecord, MaxFailFrac: *failFrac}
	}
	lc := benchLC{
		ctx: ctx,
		opts: montecarlo.RunOpts{
			Policy:    pol,
			Budget:    lifecycle.Budget{Wall: *sampleTimeout},
			HangGrace: *hangGrace,
		},
		ckDir:  *ckDir,
		resume: *resume,
		vdd:    *vdd,
	}
	var traceRunSpan *obstrace.Span
	if *traceOut != "" {
		lc.rec = obstrace.New("vsbench", *traceK)
		traceRunSpan = lc.rec.Start("vsbench", obstrace.CatRun, 0)
		lc.runSpan = traceRunSpan.ID()
		lc.traceK = *traceK
	}

	if *n < 1 {
		fmt.Fprintf(os.Stderr, "vsbench: -n must be at least 1 (got %d)\n", *n)
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "vsbench: -workers must be at least 1 (got %d)\n", *workers)
		os.Exit(2)
	}

	var modes []string
	switch *mode {
	case "exact":
		modes = []string{"exact"}
	case "fast":
		modes = []string{"fast"}
	case "both":
		modes = []string{"exact", "fast"}
	default:
		fmt.Fprintf(os.Stderr, "vsbench: unknown -mode %q (want exact, fast, or both)\n", *mode)
		os.Exit(2)
	}

	var cores []spice.LinearCore
	switch *coreSel {
	case "dense":
		cores = []spice.LinearCore{spice.CoreDense}
	case "sparse":
		cores = []spice.LinearCore{spice.CoreSparse}
	case "both":
		cores = []spice.LinearCore{spice.CoreDense, spice.CoreSparse}
	default:
		fmt.Fprintf(os.Stderr, "vsbench: unknown -core %q (want dense, sparse, or both)\n", *coreSel)
		os.Exit(2)
	}

	laneWidths, err := parseLaneWidths(*lanesSel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vsbench: -lanes: %v\n", err)
		os.Exit(2)
	}

	kern, err := vsmodel.ParseKernel(*kernSel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vsbench: -kernel: %v\n", err)
		os.Exit(2)
	}
	lc.kernel = kern.Resolve().String()

	m := core.DefaultStatVS()
	m.Kernel = kern
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	invBuild := func(vdd float64, sz circuits.Sizing, f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, vdd, sz, f, fast)
	}
	nandBuild := func(vdd float64, sz circuits.Sizing, f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
		return circuits.NewPooledNAND2FO(3, vdd, sz, f, fast)
	}
	invFn := gateUnit(m, *vdd, sz, invBuild)
	type unitRun struct {
		name  string
		fn    unitFn
		ck    func(path, hash string, n int, resume bool) (benchCkpt, error)
		lanes int
		side  *batchSide
		ssd   *shardSide
	}
	var units []unitRun
	for _, lw := range laneWidths {
		if lw == 0 {
			units = append(units,
				unitRun{name: "INV_FO3", fn: invFn, ck: ckOpener[float64]()},
				unitRun{name: "NAND2_FO3", fn: gateUnit(m, *vdd, sz, nandBuild), ck: ckOpener[float64]()},
				unitRun{name: "DFF", fn: dffUnit(m, *vdd), ck: ckOpener[float64]()},
				unitRun{name: "SRAM", fn: sramUnit(m, *vdd), ck: ckOpener[[2]float64]()},
			)
			continue
		}
		// Batched rows cover the two gate units; DFF setup search and the
		// SRAM butterfly sweep drive their circuits data-dependently and
		// would evict constantly, so they stay on the scalar engine.
		invSide, nandSide := &batchSide{}, &batchSide{}
		units = append(units,
			unitRun{name: "INV_FO3", fn: gateBatchUnit(m, *vdd, sz, lw, invSide, invBuild),
				ck: ckOpener[float64](), lanes: lw, side: invSide},
			unitRun{name: "NAND2_FO3", fn: gateBatchUnit(m, *vdd, sz, lw, nandSide, nandBuild),
				ck: ckOpener[float64](), lanes: lw, side: nandSide},
		)
	}
	if *shardSz > 0 {
		// Sharded-coordinator rows: the same two gate MCs routed through
		// internal/shard over loopback endpoints. No checkpoint opener —
		// shards are the retry unit, and a run-level checkpoint would
		// overlay (and zero out) the merged report.
		invSS, nandSS := &shardSide{}, &shardSide{}
		units = append(units,
			unitRun{name: "INV_FO3_SHARD",
				fn: shardGateUnit(m, *vdd, sz, *shardSz, *shardEps, invSS, invBuild), ssd: invSS},
			unitRun{name: "NAND2_FO3_SHARD",
				fn: shardGateUnit(m, *vdd, sz, *shardSz, *shardEps, nandSS, nandBuild), ssd: nandSS},
		)
	}

	doc := benchFile{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Vdd:         *vdd,
		Seed:        *seed,
		ModelKernel: lc.kernel,
	}
	// writeOut lands whatever rows exist in -out (plus the -metrics-out
	// snapshots), so an interrupted bench keeps its completed units.
	writeOut := func() {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vsbench: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d unit records)\n", *out, len(doc.Units))
		if lc.rec != nil {
			traceRunSpan.End()
			traceRunSpan = nil
			if err := lc.rec.WriteFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "vsbench: trace: %v\n", err)
			} else {
				fmt.Printf("trace written to %s (inspect with 'vstrace summarize %s')\n", *traceOut, *traceOut)
			}
			lc.rec = nil
		}
		if *metricsOut != "" {
			blob, err := json.MarshalIndent(struct {
				Units []unitSnapshot `json:"units"`
			}{bo.snaps}, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "vsbench: metrics snapshot: %v\n", err)
				os.Exit(1)
			}
			blob = append(blob, '\n')
			if err := os.WriteFile(*metricsOut, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "vsbench: metrics snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("observability snapshots written to %s\n", *metricsOut)
		}
	}
	for _, u := range units {
		label := u.name
		if u.lanes > 0 {
			label = fmt.Sprintf("%s(K%d)", u.name, u.lanes)
		}
		for _, core := range cores {
			for _, md := range modes {
				rec, err := runUnit(u.name, md, core, u.fn, u.ck, *n, *seed, *workers, u.lanes, u.side, lc, *dist, bo)
				if err != nil {
					if lifecycle.IsCancellation(err) {
						doc.Interrupt = err.Error()
						fmt.Fprintf(os.Stderr, "vsbench: interrupted: %v\n", err)
						fmt.Fprintf(os.Stderr, "vsbench: flushing the %d completed unit records\n", len(doc.Units))
						if *ckDir != "" {
							fmt.Fprintf(os.Stderr, "vsbench: completed samples are preserved in %s; re-run with -resume to finish\n", *ckDir)
						}
						writeOut()
						os.Exit(130)
					}
					fmt.Fprintf(os.Stderr, "vsbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("%-14s %-6s %-5s  n=%-3d nnz=%-4d fill=%.2f  %8.2f us/sample  %10.0f B/sample  %7.1f allocs/sample  %.2f iters/step\n",
					label, rec.LinearCore, rec.Mode, rec.MatrixN, rec.MatrixNNZ, rec.FillRatio,
					rec.NsPerSample/1e3, rec.BytesPerSample, rec.AllocsPerSample,
					rec.NewtonItersPerStep)
				if rec.Lanes > 0 {
					fmt.Printf("%-14s %-6s %-5s  lanes: occupancy %.1f%%, evicted %d\n",
						label, rec.LinearCore, rec.Mode, rec.LaneOccupancyPct, rec.LanesEvicted)
				}
				u.ssd.apply(&rec)
				if rec.Shards > 0 {
					fmt.Printf("%-14s %-6s %-5s  shards: %d of size %d over %d endpoints, dispatched %d, retried %d, lost %d\n",
						label, rec.LinearCore, rec.Mode, rec.Shards, rec.ShardSize, rec.ShardEndpoints,
						rec.ShardDispatched, rec.ShardRetried, rec.ShardLost)
				}
				if rec.Failed > 0 || len(rec.RescuedBy) > 0 {
					fmt.Printf("%-14s %-6s %-5s  health: attempted %d, succeeded %d, failed %d, rescued %v\n",
						label, rec.LinearCore, rec.Mode, rec.Attempted, rec.Succeeded, rec.Failed, rec.RescuedBy)
				}
				doc.Units = append(doc.Units, rec)
			}
		}
	}

	if *modelB {
		// Raw-kernel microbench: the same derivative bundle through every
		// backend, scalar and 8-lane SoA, so BENCH_mc.json records the
		// kernels' relative cost independent of solver and circuit effects.
		const evalsPerRow = 200_000
		for _, k := range []vsmodel.Kernel{vsmodel.KernelDirect, vsmodel.KernelTape, vsmodel.KernelTapeFast} {
			for _, lw := range []int{1, 8} {
				rec := measureModelEval(k, lw, *vdd, evalsPerRow)
				fmt.Printf("model-eval  %-10s K%-2d  %8.1f ns/eval  %10.0f evals/sec\n",
					rec.Kernel, rec.Lanes, rec.NsPerEval, rec.EvalsPerSec)
				doc.ModelEval = append(doc.ModelEval, rec)
			}
		}
	}

	if *lifecycleB {
		recNs, flushNs, err := measureCheckpointOverhead()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vsbench: checkpoint overhead: %v\n", err)
			os.Exit(1)
		}
		budNs, err := measureBudgetOverhead(ctx, invFn, *n, *seed, *workers)
		if err != nil {
			if lifecycle.IsCancellation(err) {
				doc.Interrupt = err.Error()
				writeOut()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "vsbench: budget overhead: %v\n", err)
			os.Exit(1)
		}
		doc.Lifecycle = &lifecycleRecord{
			CheckpointRecordNsPerSample: recNs,
			CheckpointFlushNsPer1k:      flushNs,
			BudgetCheckNsPerSample:      budNs,
		}
		fmt.Printf("lifecycle: checkpoint record %.0f ns/sample, flush %.0f ns/1k-state, budget checks %+.0f ns/sample on INV delay\n",
			recNs, flushNs, budNs)
	}

	writeOut()
}
