// vsshard is the sharded Monte Carlo coordinator/worker CLI.
//
// Modes:
//
//	vsshard work                      one-shot worker: shard Request JSON on
//	                                  stdin, result Envelope JSON on stdout
//	vsshard serve -listen :8731       long-lived HTTP worker (POST /shard)
//	vsshard run   -n 10000 ...        coordinator: split an INV/NAND2 delay
//	                                  MC into shards, dispatch to -peers
//	                                  and/or -spawn subprocess workers,
//	                                  merge bit-identically
//
// The merged run is bit-identical to `vsshard run` with no workers at all
// (pure local execution) at any shard size and worker count; kill any
// worker mid-run and the coordinator retries, speculates on stragglers,
// and degrades to local execution when nobody is left.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/obs/trace"
	"vstat/internal/shard"
	"vstat/internal/variation"
)

// Gate transient window, matching the experiments' delay MCs.
const (
	gateTranStop = 560e-12
	gateTranStep = 1.5e-12
)

// configHash pins the worker-side run identity: protocol revision, bench,
// supply, and solver path. Seed and N travel inside each Request, so two
// processes agree on a hash exactly when they would compute the same
// per-sample physics.
func configHash(bench string, vdd float64, fast bool) string {
	return montecarlo.ConfigHash("vsshard/v1", bench, vdd, fast)
}

// paperModel is the statistical VS model vsshard samples: the nominal
// 40-nm cards with the paper's published Table II mismatch coefficients.
// Every worker builds the identical model from these constants, so any two
// processes that agree on the config hash compute the same population
// (the full BPV extraction lives in vsrepro; a worker CLI only needs a
// deterministic, physically sensible spread).
func paperModel() *core.StatVS {
	m := core.DefaultStatVS()
	m.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	m.AlphaP = variation.FromPaperUnits(2.86, 3.66, 3.66, 781, 0.81)
	return m
}

// benchBuilder returns the pooled-gate factory for a bench name.
func benchBuilder(bench string, vdd float64) (func(circuits.Factory, bool) (*circuits.PooledGate, error), error) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	switch bench {
	case "inv":
		return func(f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
			return circuits.NewPooledInverterFO(3, vdd, sz, f, fast)
		}, nil
	case "nand2":
		return func(f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
			return circuits.NewPooledNAND2FO(3, vdd, sz, f, fast)
		}, nil
	default:
		return nil, fmt.Errorf("vsshard: unknown bench %q (want inv or nand2)", bench)
	}
}

// makeExec builds the dispatching executor: the request's Bench field
// selects the sample function, the config-hash gate then rejects any
// request whose vdd/fast/protocol disagree with this process.
func makeExec(vdd float64, fast bool, engineWorkers int) shard.ExecFn[float64] {
	execs := map[string]shard.ExecFn[float64]{}
	return func(ctx context.Context, req shard.Request) (*shard.Envelope[float64], error) {
		exec, ok := execs[req.Bench]
		if !ok {
			build, err := benchBuilder(req.Bench, vdd)
			if err != nil {
				return nil, err
			}
			m := paperModel()
			exec = shard.NewExecutor(configHash(req.Bench, vdd, fast), engineWorkers,
				func(int) (*circuits.PooledGate, error) { return build(m.Nominal(), fast) },
				func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
					b.Restat(m.Statistical(rng))
					res, err := b.Transient(gateTranStop, gateTranStep)
					if err != nil {
						return 0, err
					}
					return measure.PairDelay(res, b.In, b.Out, vdd)
				})
			execs[req.Bench] = exec
		}
		return exec(ctx, req)
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: vsshard work|serve|run [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "work":
		err = workMain(os.Args[2:])
	case "serve":
		err = serveMain(os.Args[2:])
	case "run":
		err = runMain(os.Args[2:])
	default:
		err = fmt.Errorf("vsshard: unknown mode %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// workMain is the one-shot subprocess worker: one Request in, one Envelope
// out, exit.
func workMain(args []string) error {
	fs := flag.NewFlagSet("vsshard work", flag.ExitOnError)
	vdd := fs.Float64("vdd", 0.9, "supply voltage")
	fast := fs.Bool("fast", false, "fast (chord-Newton) MC solver path")
	workers := fs.Int("engine-workers", 1, "MC workers inside this process (0 = GOMAXPROCS)")
	fs.Parse(args)

	var req shard.Request
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		return fmt.Errorf("vsshard work: decode request: %w", err)
	}
	env, err := makeExec(*vdd, *fast, *workers)(context.Background(), req)
	if err != nil {
		return fmt.Errorf("vsshard work: %w", err)
	}
	return json.NewEncoder(os.Stdout).Encode(env)
}

// serveMain is the long-lived HTTP worker. Besides the shard protocol
// (POST /shard, GET /healthz) it exposes GET /metrics: a Prometheus text
// endpoint counting this worker's shard traffic (requests served, samples
// executed, failed requests), all on the same listen address.
//
// SIGTERM/SIGINT triggers a graceful drain: the in-flight shard runs to
// completion and ships its envelope, while every new request (and health
// probe) is rejected 503 with the draining header — the typed retryable
// error the coordinator's backoff ladder re-routes around. The process
// exits once in-flight work finishes or -drain-grace expires.
func serveMain(args []string) error {
	fs := flag.NewFlagSet("vsshard serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8731", "listen address")
	vdd := fs.Float64("vdd", 0.9, "supply voltage")
	fast := fs.Bool("fast", false, "fast (chord-Newton) MC solver path")
	workers := fs.Int("engine-workers", 1, "MC workers inside this process (0 = GOMAXPROCS)")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "max wait for the in-flight shard after SIGTERM")
	fs.Parse(args)

	reg := obs.NewRegistry()
	reqs := reg.Counter("worker_shard_requests_total")
	samples := reg.Counter("worker_samples_total")
	fails := reg.Counter("worker_shard_failures_total")
	reg.SetHelp("worker_shard_requests_total", "Shard requests this worker accepted.")
	reg.SetHelp("worker_samples_total", "Monte Carlo samples this worker executed across all shards.")
	reg.SetHelp("worker_shard_failures_total", "Shard requests that ended in an error (refused or failed mid-run).")
	sh := reg.NewShard()
	exec := makeExec(*vdd, *fast, *workers)
	counted := shard.ExecFn[float64](func(ctx context.Context, req shard.Request) (*shard.Envelope[float64], error) {
		sh.Add(reqs, 1)
		env, err := exec(ctx, req)
		if err != nil {
			sh.Add(fails, 1)
			return nil, err
		}
		sh.Add(samples, int64(env.Attempted))
		return env, nil
	})
	gate := &shard.Gate{}
	mux := http.NewServeMux()
	mux.Handle("/", shard.GatedHandler(counted, gate))
	mux.Handle("/metrics", reg.Handler())
	srv := &http.Server{Addr: *listen, Handler: mux}

	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		// Drain first so requests that race the shutdown see the typed
		// rejection, then let Shutdown wait out the in-flight shard.
		gate.Drain()
		fmt.Fprintf(os.Stderr, "vsshard serve: %v: draining (grace %s)\n", s, *drainGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()

	fmt.Fprintf(os.Stderr, "vsshard serve: listening on %s (vdd=%g fast=%v; POST /shard, GET /healthz, GET /metrics)\n",
		*listen, *vdd, *fast)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("vsshard serve: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "vsshard serve: drained cleanly")
	return nil
}

// runMain is the coordinator.
func runMain(args []string) error {
	fs := flag.NewFlagSet("vsshard run", flag.ExitOnError)
	bench := fs.String("bench", "inv", "bench: inv or nand2")
	n := fs.Int("n", 10000, "total Monte Carlo samples")
	seed := fs.Int64("seed", 20130318, "run seed")
	vdd := fs.Float64("vdd", 0.9, "supply voltage")
	fast := fs.Bool("fast", false, "fast (chord-Newton) MC solver path")
	shardSize := fs.Int("shard-size", 1024, "samples per shard")
	peers := fs.String("peers", "", "comma-separated worker base URLs (vsshard serve)")
	spawn := fs.Int("spawn", 0, "subprocess workers to spawn (vsshard work, one per dispatch)")
	localFallback := fs.Bool("local-fallback", true, "run undeliverable shards in-process")
	maxFailFrac := fs.Float64("max-fail-frac", 0.01, "tolerated per-shard failure fraction (0 = fail fast)")
	maxAttempts := fs.Int("max-attempts", 4, "transport attempts per shard before local fallback")
	straggler := fs.Duration("straggler", 0, "speculative re-dispatch after this in-flight time (0 = off)")
	shardWall := fs.Duration("shard-wall", 0, "wall budget per shard attempt (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "whole-run wall limit (0 = unlimited)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file of the run (dispatches, shard attempts, worst-sample spans from every worker) to this path")
	traceK := fs.Int("trace-k", 0, "with -trace-out, keep full span detail for the K worst samples run-wide (0 = default 8)")
	journalPath := fs.String("journal", "", "durable dispatch journal path: every shard commit is fsynced here")
	resume := fs.Bool("resume", false, "with -journal, restore its committed shards and dispatch only the rest")
	stream := fs.Bool("stream", false, "streaming constant-memory merge: fold each shard into running stats instead of buffering the full result vector")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var eps []shard.Endpoint[float64]
	for _, base := range strings.Split(*peers, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		hctx, hcancel := context.WithTimeout(ctx, 5*time.Second)
		err := shard.WaitHealthy(hctx, base, nil)
		hcancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vsshard run: skipping unhealthy peer %s: %v\n", base, err)
			continue
		}
		eps = append(eps, shard.Endpoint[float64]{Name: base, Transport: shard.HTTPEndpoint[float64]{Base: base}})
	}
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	for w := 0; w < *spawn; w++ {
		argv := []string{self, "work", fmt.Sprintf("-vdd=%g", *vdd), fmt.Sprintf("-fast=%v", *fast)}
		eps = append(eps, shard.Endpoint[float64]{
			Name:      fmt.Sprintf("spawn-%d", w),
			Transport: shard.ProcEndpoint[float64]{Argv: argv},
		})
	}

	var local shard.ExecFn[float64]
	if *localFallback || len(eps) == 0 {
		local = makeExec(*vdd, *fast, 0)
	}
	cfg := shard.Config{
		N:           *n,
		Seed:        *seed,
		ConfigHash:  configHash(*bench, *vdd, *fast),
		ShardSize:   *shardSize,
		Bench:       *bench,
		MaxFailFrac: *maxFailFrac,
		ShardWall:   *shardWall,
		MaxAttempts: *maxAttempts,

		StragglerAfter: *straggler,
	}
	var rec *trace.Recorder
	var runSpan *trace.Span
	if *traceOut != "" {
		rec = trace.New("vsshard", *traceK)
		runSpan = rec.Start(fmt.Sprintf("vsshard run %s n=%d", *bench, *n), trace.CatRun, 0)
		cfg.Trace = rec
		cfg.TraceParent = runSpan.ID()
		cfg.TraceK = *traceK
	}
	var opts shard.RunOptions[float64]
	if *journalPath != "" {
		var jnl *shard.Journal[float64]
		var jerr error
		if *resume {
			jnl, jerr = shard.OpenJournal[float64](*journalPath, cfg)
		} else {
			jnl, jerr = shard.CreateJournal[float64](*journalPath, cfg)
		}
		if jerr != nil {
			return fmt.Errorf("vsshard run: %w", jerr)
		}
		defer jnl.Close()
		if d := jnl.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "vsshard run: journal: dropped %d torn/invalid trailing record(s); their shards will be re-dispatched\n", d)
		}
		opts.Journal = jnl
	}
	var sum *montecarlo.StreamSummary
	if *stream {
		sum = &montecarlo.StreamSummary{}
		opts.Stream = func(env *shard.Envelope[float64]) { shard.AddGood(env, sum) }
	}
	start := time.Now()
	res, err := shard.RunWithOptions(ctx, cfg, eps, local, opts)
	wall := time.Since(start)
	if rec != nil {
		// Written even on a failed/cancelled run — a partial trace is
		// exactly what post-mortems want.
		runSpan.End()
		if werr := rec.WriteFile(*traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "vsshard run: trace:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "vsshard run: trace written to %s (inspect with 'vstrace summarize %s')\n",
				*traceOut, *traceOut)
		}
	}
	if err != nil {
		return fmt.Errorf("vsshard run: %w", err)
	}
	// A run whose accounting doesn't balance must not pass for a clean
	// result: exit non-zero with the diagnostic instead of burying the
	// violation in metrics.
	if cerr := res.Stats.Check(res.Shards); cerr != nil {
		printSummary(*bench, *n, res, sum, wall, len(eps))
		return fmt.Errorf("vsshard run: %w", cerr)
	}
	printSummary(*bench, *n, res, sum, wall, len(eps))
	return nil
}

func printSummary(bench string, n int, res shard.Result[float64], sum *montecarlo.StreamSummary, wall time.Duration, workers int) {
	var mean, sd float64
	var good int64
	if sum != nil {
		mean, sd, good = sum.Mean(), sum.Std(), sum.Count()
	} else {
		vals := montecarlo.Compact(res.Out, res.Report)
		mean, sd = meanStd(vals)
		good = int64(len(vals))
	}
	fmt.Printf("vsshard: %s delay MC, n=%d over %d shards, %d workers, %.2fs\n",
		bench, n, res.Shards, workers, wall.Seconds())
	fmt.Printf("  delay mean %.4g ps  sigma %.4g ps  (%d good samples)\n",
		mean*1e12, sd*1e12, good)
	if !res.Report.Clean() {
		fmt.Printf("  run health: %s\n", res.Report.String())
	}
	s := res.Stats
	fmt.Printf("  shards: dispatched %d  retried %d  speculated %d  duplicates %d  lost %d  workers-lost %d  local %d\n",
		s.Dispatched, s.Retried, s.Speculated, s.Duplicates, s.Lost, s.WorkersLost, s.LocalFallback)
	if s.JournalCommits > 0 || s.ResumeSkipped > 0 {
		fmt.Printf("  journal: committed %d  restored-on-resume %d\n", s.JournalCommits, s.ResumeSkipped)
	}
	if sum != nil {
		fmt.Printf("  streaming merge: peak live envelopes %d\n", s.PeakLiveEnvelopes)
	}
	if len(s.CommitLatency) > 0 {
		lats := append([]time.Duration(nil), s.CommitLatency...)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("  shard latency p50 %s  max %s\n",
			lats[len(lats)/2].Round(time.Millisecond), lats[len(lats)-1].Round(time.Millisecond))
	}
}

func meanStd(v []float64) (float64, float64) {
	if len(v) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	var ss float64
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	if len(v) < 2 {
		return mean, 0
	}
	return mean, math.Sqrt(ss / float64(len(v)-1))
}
