// Command bpvx runs the backward-propagation-of-variance statistical
// extraction in isolation: golden Monte Carlo over the extraction
// geometries, then the per-geometry and joint solves, printing the measured
// variances, the sensitivity matrices and the resulting α coefficients
// (paper Sec. III / Table II).
//
// Usage:
//
//	bpvx [-kind nmos|pmos] [-n 1500] [-seed N] [-individual]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"vstat/internal/bpv"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/experiments"
	"vstat/internal/extract"
	"vstat/internal/montecarlo"
	"vstat/internal/obs/trace"
	"vstat/internal/stats"
)

func main() {
	kindFlag := flag.String("kind", "nmos", "device polarity")
	n := flag.Int("n", 1500, "Monte Carlo samples per geometry")
	seed := flag.Int64("seed", 1, "random seed")
	individual := flag.Bool("individual", false, "also print per-geometry solves (Fig. 2 mode)")
	vdd := flag.Float64("vdd", 0.9, "supply voltage")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file of the golden MC runs to this path")
	traceK := flag.Int("trace-k", 0, "with -trace-out, keep the K worst samples per geometry run (0 = default 8)")
	flag.Parse()

	var kind device.Kind
	switch *kindFlag {
	case "nmos":
		kind = device.NMOS
	case "pmos":
		kind = device.PMOS
	default:
		fatal(fmt.Errorf("bad -kind %q", *kindFlag))
	}

	golden := core.DefaultStatGolden()
	vs := core.DefaultStatVS()

	// Nominal fit first (the BPV sensitivities live on the fitted card).
	ref := golden.Card(kind, 300e-9, 40e-9)
	ds := extract.SampleDevice(&ref, *vdd)
	fitted, _, err := extract.FitVS(vs.Card(kind, 300e-9, 40e-9), ds)
	if err != nil {
		fatal(err)
	}
	ref44 := golden.Card(kind, 300e-9, 44e-9)
	if cal, err := extract.CalibrateLDelta(fitted, &ref44, *vdd); err == nil {
		fitted = cal
	}

	var rec *trace.Recorder
	var runSpan *trace.Span
	if *traceOut != "" {
		rec = trace.New("bpvx", *traceK)
		runSpan = rec.Start("bpvx "+*kindFlag, trace.CatRun, 0)
	}

	tg := bpv.Targets{Vdd: *vdd}
	var data []bpv.GeometryVariance
	fmt.Printf("golden MC variances (N=%d per geometry):\n", *n)
	fmt.Printf("%10s %8s %14s %14s %14s\n", "W (nm)", "L (nm)", "sIdsat (uA)", "sLog10Ioff", "sCgg (aF)")
	for gi, g := range experiments.ExtractionGeometries {
		var opts montecarlo.RunOpts
		var gSpan *trace.Span
		if rec != nil {
			gSpan = rec.Start(fmt.Sprintf("golden-mc W=%.0fnm L=%.0fnm", g[0]*1e9, g[1]*1e9),
				trace.CatMCRun, runSpan.ID())
			opts.Trace = trace.NewMC(rec, fmt.Sprintf("golden-%d", gi), gSpan.ID(), *traceK)
		}
		samples, _, err := montecarlo.MapReportCtx(context.Background(), *n, *seed+int64(gi)*7919, 0, opts,
			func(idx int, rng *rand.Rand) ([]float64, error) {
				return tg.EvalVec(golden.SampleDevice(rng, kind, g[0], g[1])), nil
			})
		if opts.Trace != nil {
			opts.Trace.Finish()
		}
		gSpan.End()
		if err != nil {
			fatal(err)
		}
		gv := bpv.GeometryVariance{
			W: g[0], L: g[1],
			SigmaIdsat:   stats.StdDev(montecarlo.Column(samples, 0)),
			SigmaLogIoff: stats.StdDev(montecarlo.Column(samples, 1)),
			SigmaCgg:     stats.StdDev(montecarlo.Column(samples, 2)),
		}
		data = append(data, gv)
		fmt.Printf("%10.0f %8.0f %14.3f %14.4f %14.3f\n",
			g[0]*1e9, g[1]*1e9, gv.SigmaIdsat*1e6, gv.SigmaLogIoff, gv.SigmaCgg*1e18)
	}

	ex := &bpv.Extraction{Card: fitted, Kind: kind, Vdd: *vdd, Alpha5: golden.Alphas(kind).A5}
	al, err := ex.SolveJoint(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\njoint solve: %s\n", al)

	if *individual {
		fmt.Println("\nper-geometry solves:")
		for _, gv := range data {
			ind, err := ex.SolveIndividual(gv)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  W=%4.0f nm: %s\n", gv.W*1e9, ind)
		}
	}

	if rec != nil {
		runSpan.End()
		if err := rec.WriteFile(*traceOut); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		fmt.Printf("\ntrace written to %s (inspect with 'vstrace summarize %s')\n", *traceOut, *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpvx:", err)
	os.Exit(1)
}
