// Command vstrace inspects the Chrome trace-event JSON files the vsrepro,
// vsbench, vsshard, and bpvx tools write with -trace-out.
//
// Usage:
//
//	vstrace summarize run.trace.json
//
// summarize prints a run overview (root spans, event counts, orphan check),
// a per-shard dispatch table, the run's critical path (the chain of
// longest-duration children from the root), a per-phase time breakdown
// aggregated over the retained worst samples, and the worst-K sample table
// from the flight recorder. The same file loads in Perfetto /
// chrome://tracing for the interactive view.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"vstat/internal/obs/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summarize":
		fs := flag.NewFlagSet("vstrace summarize", flag.ExitOnError)
		depth := fs.Int("depth", 12, "critical-path depth to print")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: vstrace summarize [-depth N] <trace.json>")
			os.Exit(2)
		}
		if err := summarize(fs.Arg(0), *depth); err != nil {
			fmt.Fprintln(os.Stderr, "vstrace:", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vstrace summarize [-depth N] <trace.json>")
	os.Exit(2)
}

func summarize(path string, depth int) error {
	evs, sum, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no span events", path)
	}

	children := make(map[uint64][]*trace.Event, len(evs))
	catCount := map[string]int{}
	catDur := map[string]int64{}
	var roots []*trace.Event
	for i := range evs {
		ev := &evs[i]
		catCount[ev.Cat]++
		catDur[ev.Cat] += ev.Dur
		if ev.Parent == 0 {
			roots = append(roots, ev)
		}
	}
	for i := range evs {
		ev := &evs[i]
		if ev.Parent != 0 {
			children[ev.Parent] = append(children[ev.Parent], ev)
		}
	}

	// Overview.
	fmt.Printf("trace %s: %d spans, %d orphans\n", path, len(evs), trace.Orphans(evs))
	for _, r := range roots {
		fmt.Printf("  root: %-40s %10s  [%s]\n", r.Name, dur(r.Dur), r.Proc)
	}
	fmt.Println()
	fmt.Println("spans by category:")
	cats := make([]string, 0, len(catCount))
	for c := range catCount {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-12s %6d spans  %12s total\n", c, catCount[c], dur(catDur[c]))
	}

	// Per-shard table: the coordinator's dispatch spans paired (by timing
	// only — attempts may be lost before producing a worker span) with the
	// worker-side shard spans.
	var dispatch, shards []*trace.Event
	for i := range evs {
		switch evs[i].Cat {
		case trace.CatDispatch:
			dispatch = append(dispatch, &evs[i])
		case trace.CatShard:
			shards = append(shards, &evs[i])
		}
	}
	if len(dispatch) > 0 {
		sort.Slice(dispatch, func(i, j int) bool { return dispatch[i].Start < dispatch[j].Start })
		fmt.Println()
		fmt.Println("dispatch attempts (coordinator view):")
		fmt.Printf("  %-44s %-10s %12s\n", "attempt", "outcome", "wall")
		for _, d := range dispatch {
			fmt.Printf("  %-44s %-10s %12s\n", d.Name, d.Note, dur(d.Dur))
		}
	}
	if len(shards) > 0 {
		sort.Slice(shards, func(i, j int) bool { return shards[i].Start < shards[j].Start })
		fmt.Println()
		fmt.Println("shard executions (worker view):")
		fmt.Printf("  %-44s %-16s %12s\n", "shard", "proc", "wall")
		for _, s := range shards {
			fmt.Printf("  %-44s %-16s %12s\n", s.Name, s.Proc, dur(s.Dur))
		}
	}

	// Critical path: from each root, repeatedly descend into the
	// longest-duration child, reporting each hop's self time (span duration
	// minus its children's).
	for _, r := range roots {
		fmt.Println()
		fmt.Printf("critical path from %q:\n", r.Name)
		cur := r
		for lvl := 0; cur != nil && lvl < depth; lvl++ {
			kids := children[cur.ID]
			var childSum int64
			var next *trace.Event
			for _, k := range kids {
				childSum += k.Dur
				if next == nil || k.Dur > next.Dur {
					next = k
				}
			}
			self := cur.Dur - childSum
			if self < 0 {
				self = 0 // concurrent children legitimately oversubscribe the parent
			}
			fmt.Printf("  %s%-*s %12s total  %12s self  (%d children)\n",
				strings.Repeat("  ", lvl), 44-2*lvl, name(cur), dur(cur.Dur), dur(self), len(kids))
			cur = next
		}
	}

	// Per-phase breakdown over the retained worst samples (the only samples
	// whose phase spans survive to the file).
	phaseDur := map[string]int64{}
	phaseCount := map[string]int{}
	for i := range evs {
		if evs[i].Cat == trace.CatPhase {
			phaseDur[evs[i].Name] += evs[i].Dur
			phaseCount[evs[i].Name]++
		}
	}
	if len(phaseDur) > 0 {
		type pd struct {
			name string
			d    int64
		}
		var ps []pd
		for n, d := range phaseDur {
			ps = append(ps, pd{n, d})
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].d != ps[j].d {
				return ps[i].d > ps[j].d
			}
			return ps[i].name < ps[j].name
		})
		fmt.Println()
		fmt.Printf("phase breakdown over the %d retained worst samples:\n", len(sum.Worst))
		for _, p := range ps {
			fmt.Printf("  %-28s %6d spans  %12s total\n", p.name, phaseCount[p.name], dur(p.d))
		}
	}

	// Worst-K table.
	if len(sum.Worst) > 0 {
		fmt.Println()
		fmt.Printf("worst %d samples (flight recorder, K=%d):\n", len(sum.Worst), sum.K)
		fmt.Printf("  %8s %-12s %8s %8s %12s  %-12s %s\n",
			"idx", "verdict", "iters", "rescues", "wall", "worst-node", "error")
		for _, w := range sum.Worst {
			errMsg := w.Diag.Err
			if len(errMsg) > 60 {
				errMsg = errMsg[:57] + "..."
			}
			trunc := ""
			if w.Truncated {
				trunc = " [spans truncated]"
			}
			fmt.Printf("  %8d %-12s %8d %8d %12s  %-12s %s%s\n",
				w.Diag.Idx, w.Diag.Verdict, w.Diag.Iters, w.Diag.Rescues,
				dur(w.Diag.WallNs), w.Diag.WorstNode, errMsg, trunc)
		}
	}
	return nil
}

// name renders a span with its run context compactly.
func name(ev *trace.Event) string {
	if len(ev.Name) > 40 {
		return ev.Name[:37] + "..."
	}
	return ev.Name
}

func dur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
