// Command spicecli runs a SPICE-subset netlist with the built-in MNA engine
// and the VS / golden compact models, printing operating points, DC sweeps
// and transient waveforms as whitespace-separated tables.
//
// Usage:
//
//	spicecli deck.sp            # runs every analysis card in the deck
//	spicecli -nodes out,q deck.sp
//
// Supported cards are documented on spice.ParseNetlist.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"strings"

	"vstat/internal/spice"
)

func main() {
	nodesFlag := flag.String("nodes", "", "comma-separated node names to print (default: all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spicecli [-nodes a,b] deck.sp")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	deck, err := spice.ParseNetlist(f)
	if err != nil {
		fatal(err)
	}
	if deck.Title != "" {
		fmt.Printf("* %s\n", deck.Title)
	}

	var nodes []string
	if *nodesFlag != "" {
		nodes = strings.Split(*nodesFlag, ",")
	} else {
		for i := 0; i < deck.Circuit.NumNodes(); i++ {
			nodes = append(nodes, deck.Circuit.NodeName(i))
		}
	}

	if deck.OPRequested {
		op, err := deck.Circuit.OP()
		if err != nil {
			fatal(err)
		}
		fmt.Println("== operating point ==")
		for _, n := range nodes {
			fmt.Printf("V(%s) = %.6g V\n", n, op.VName(n))
		}
	}

	for _, dc := range deck.DCCards {
		src := deck.Circuit.VSourceIndex(dc.Source)
		if src < 0 {
			fatal(fmt.Errorf("unknown source %q in .dc", dc.Source))
		}
		var values []float64
		for v := dc.Start; v <= dc.Stop+1e-15; v += dc.Step {
			values = append(values, v)
		}
		ops, err := deck.Circuit.DCSweep(src, values)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== dc sweep %s ==\n%-12s", dc.Source, dc.Source)
		for _, n := range nodes {
			fmt.Printf(" %-12s", "V("+n+")")
		}
		fmt.Println()
		for i, op := range ops {
			fmt.Printf("%-12.6g", values[i])
			for _, n := range nodes {
				fmt.Printf(" %-12.6g", op.VName(n))
			}
			fmt.Println()
		}
	}

	for _, ac := range deck.ACCards {
		src := deck.Circuit.VSourceIndex(ac.Source)
		if src < 0 {
			fatal(fmt.Errorf("unknown source %q in .ac", ac.Source))
		}
		res, err := deck.Circuit.AC(src, spice.LogSpace(ac.FStart, ac.FStop, ac.Points))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== ac sweep %s ==\n%-14s", ac.Source, "freq")
		for _, n := range nodes {
			fmt.Printf(" %-12s %-12s", "dB("+n+")", "ph("+n+")")
		}
		fmt.Println()
		for k, f := range res.Freqs {
			fmt.Printf("%-14.6g", f)
			for _, n := range nodes {
				v := res.VName(n, k)
				fmt.Printf(" %-12.4g %-12.4g", 20*math.Log10(cmplx.Abs(v)+1e-300), cmplx.Phase(v))
			}
			fmt.Println()
		}
	}

	for _, tr := range deck.TranCards {
		opts := spice.TranOpts{Stop: tr.Stop, Step: tr.Step, UIC: tr.UIC}
		if tr.UIC && len(deck.ICs) > 0 {
			opts.IC = map[int]float64{}
			for name, v := range deck.ICs {
				opts.IC[deck.Circuit.Node(name)] = v
			}
		}
		res, err := deck.Circuit.Transient(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== transient ==\n%-14s", "t")
		for _, n := range nodes {
			fmt.Printf(" %-12s", "V("+n+")")
		}
		fmt.Println()
		waves := make([][]float64, len(nodes))
		for i, n := range nodes {
			waves[i] = res.VName(n)
		}
		for k, tm := range res.Time {
			fmt.Printf("%-14.6g", tm)
			for i := range nodes {
				fmt.Printf(" %-12.6g", waves[i][k])
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spicecli:", err)
	os.Exit(1)
}
