// Command vsrepro runs the paper-reproduction experiments: every table and
// figure of "Statistical Modeling with the Virtual Source MOSFET Model"
// (DATE 2013), printed as the rows/series the paper reports.
//
// Usage:
//
//	vsrepro [-exp all|table1|table2|table3|table4|fig1|...|eq1] [-scale 0.1] [-seed N] [-workers N]
//
// -scale rescales every Monte Carlo sample count relative to the paper's
// (1.0 reproduces the paper's N; the default 0.2 keeps a laptop run short).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vstat/internal/cards"
	"vstat/internal/experiments"
	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	obstrace "vstat/internal/obs/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1..table4, fig1..fig9, eq1, fig8hold, ext-*), 'all' (paper set) or 'ext' (extensions)")
		scale    = flag.Float64("scale", 0.2, "Monte Carlo sample scale vs paper counts")
		seed     = flag.Int64("seed", 20130318, "master random seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		vdd      = flag.Float64("vdd", 0.9, "nominal supply voltage")
		outCard  = flag.String("o", "", "save the extracted statistical VS model card (JSON) to this path")
		csvDir   = flag.String("csv", "", "also dump each figure's plot series as CSV into this directory")
		skip     = flag.Bool("skip-failed", false, "isolate non-convergent Monte Carlo samples instead of aborting the experiment; dropped samples are reported in each figure's run-health line")
		failFrac = flag.Float64("max-fail-frac", 0.01, "with -skip-failed, abort an experiment once this failure fraction is exceeded (0 = no cap)")

		timeout       = flag.Duration("timeout", 0, "overall campaign deadline (0 = none); on expiry the run stops cleanly, flushing checkpoints and metrics")
		sampleTimeout = flag.Duration("sample-timeout", 0, "per-sample wall-clock budget; an over-budget or hung sample becomes a recorded per-sample failure under -skip-failed")
		hangGrace     = flag.Duration("hang-grace", 0, "how far past -sample-timeout the watchdog lets a wedged sample run before abandoning it (0 = one extra -sample-timeout)")
		checkpoint    = flag.String("checkpoint", "", "directory for per-experiment checkpoint files; an interrupted campaign keeps every completed sample there")
		resume        = flag.Bool("resume", false, "resume from existing files in -checkpoint, re-running only the missing samples; without it stale files are discarded")
		shardSize     = flag.Int("shard-size", 0, "route the circuit Monte Carlo runs through the internal/shard coordinator in shards of this many samples (0 = off; mutually exclusive with -checkpoint)")
		shardWorkers  = flag.Int("shard-workers", 0, "with -shard-size, in-process loopback endpoints per run (0 = -workers)")
		shardJournal  = flag.String("shard-journal", "", "with -shard-size, directory for per-experiment dispatch journals; a killed campaign restarted with -resume restores committed shards instead of re-running them")

		metricsOut  = flag.String("metrics-out", "", "write the observability metrics snapshot (JSON) to this path on exit; enables instrumentation")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable) of the campaign to this path on exit; includes the worst-sample flight recorder (inspect with 'vstrace summarize')")
		traceK      = flag.Int("trace-k", 0, "with -trace-out, keep full span detail for the K worst samples per run (0 = default 8)")
		trace       = flag.Int("trace", 0, "emit every Nth structured solver trace event to stderr (0 = off)")
		logLevel    = flag.String("log-level", "warn", "minimum trace event level: debug|info|warn|error")
		pprofAddr   = flag.String("pprof", "", "serve /debug/pprof and a Prometheus /metrics endpoint on this address (e.g. localhost:6060)")
		progressSec = flag.Float64("progress", 0, "print a live Monte Carlo progress line to stderr every N seconds (0 = off)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: Monte Carlo claiming stops,
	// in-flight samples drain, checkpoints and metrics flush before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Seed: *seed, Workers: *workers, Scale: *scale, Vdd: *vdd,
		Ctx:           ctx,
		SampleBudget:  lifecycle.Budget{Wall: *sampleTimeout},
		HangGrace:     *hangGrace,
		CheckpointDir: *checkpoint,
		Resume:        *resume,

		ShardSize:       *shardSize,
		ShardEndpoints:  *shardWorkers,
		ShardJournalDir: *shardJournal,
	}
	if *skip {
		cfg.Policy = montecarlo.Policy{OnFailure: montecarlo.SkipAndRecord, MaxFailFrac: *failFrac}
	}

	var rec *obstrace.Recorder
	var runSpan *obstrace.Span
	if *traceOut != "" {
		rec = obstrace.New("vsrepro", *traceK)
		runSpan = rec.Start("vsrepro "+*exp, obstrace.CatRun, 0)
		cfg.TraceRec = rec
		cfg.TraceParent = runSpan.ID()
		cfg.TraceK = *traceK
	}

	var reg *obs.Registry
	if *metricsOut != "" || *pprofAddr != "" || *trace > 0 || *progressSec > 0 {
		obs.SetEnabled(true)
		reg = obs.NewRegistry()
		cfg.Metrics = reg
		if *trace > 0 {
			var lvl slog.Level
			if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
				fatal(fmt.Errorf("-log-level: %w", err))
			}
			cfg.Trace = obs.NewEventSink(os.Stderr, lvl, *trace)
		}
		if *progressSec > 0 {
			pr := obs.NewProgress(os.Stderr, time.Duration(*progressSec*float64(time.Second)))
			cfg.Progress = pr
			montecarlo.SetProgress(pr)
		}
		if *pprofAddr != "" {
			http.Handle("/metrics", reg.Handler())
			go func() {
				if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
					fmt.Fprintln(os.Stderr, "vsrepro: pprof server:", err)
				}
			}()
			fmt.Printf("serving /debug/pprof and /metrics on http://%s\n", *pprofAddr)
		}
	}
	fmt.Printf("vsrepro: building extraction suite (scale=%g, seed=%d)\n", *scale, *seed)
	t0 := time.Now()
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("suite ready in %s: fitted VS cards + BPV coefficients\n\n", time.Since(t0).Round(time.Millisecond))

	if *outCard != "" {
		comment := fmt.Sprintf("extracted by vsrepro seed=%d scale=%g vdd=%g", *seed, *scale, *vdd)
		if err := cards.SaveStatVS(*outCard, suite.VS, comment); err != nil {
			fatal(err)
		}
		fmt.Printf("statistical VS model card written to %s\n\n", *outCard)
	}

	type runner struct {
		id  string
		ext bool // extension beyond the paper's figures; excluded from "all"
		run func() (fmt.Stringer, error)
	}
	runners := []runner{
		{"table1", false, func() (fmt.Stringer, error) { return suite.Table1(), nil }},
		{"fig1", false, func() (fmt.Stringer, error) { return suite.Fig1(), nil }},
		{"table2", false, func() (fmt.Stringer, error) { return suite.Table2(), nil }},
		{"fig2", false, func() (fmt.Stringer, error) { r, err := suite.Fig2(); return r, err }},
		{"fig3", false, func() (fmt.Stringer, error) { r, err := suite.Fig3(); return r, err }},
		{"table3", false, func() (fmt.Stringer, error) { r, err := suite.Table3(); return r, err }},
		{"fig4", false, func() (fmt.Stringer, error) { r, err := suite.Fig4(); return r, err }},
		{"fig5", false, func() (fmt.Stringer, error) { r, err := suite.Fig5(); return r, err }},
		{"fig6", false, func() (fmt.Stringer, error) { r, err := suite.Fig6(); return r, err }},
		{"fig7", false, func() (fmt.Stringer, error) { r, err := suite.Fig7(); return r, err }},
		{"fig8", false, func() (fmt.Stringer, error) { r, err := suite.Fig8(); return r, err }},
		{"fig9", false, func() (fmt.Stringer, error) { r, err := suite.Fig9(); return r, err }},
		{"table4", false, func() (fmt.Stringer, error) { r, err := suite.Table4(); return r, err }},
		{"eq1", false, func() (fmt.Stringer, error) { r, err := suite.Eq1Demo(); return r, err }},
		{"fig8hold", true, func() (fmt.Stringer, error) { r, err := suite.Fig8Hold(); return r, err }},
		{"ext-corners", true, func() (fmt.Stringer, error) { r, err := suite.ExtCorners(); return r, err }},
		{"ext-nconv", true, func() (fmt.Stringer, error) { r, err := suite.ExtNConv(); return r, err }},
		{"ext-interdie", true, func() (fmt.Stringer, error) { r, err := suite.ExtInterdie(); return r, err }},
		{"ext-sramac", true, func() (fmt.Stringer, error) { r, err := suite.ExtSRAMAC(); return r, err }},
		{"ext-ring", true, func() (fmt.Stringer, error) { r, err := suite.ExtRing(); return r, err }},
		{"ext-ssta", true, func() (fmt.Stringer, error) {
			f7, err := suite.Fig7()
			if err != nil {
				return nil, err
			}
			r, err := suite.ExtSSTA(f7)
			return r, err
		}},
		{"ext-yield", true, func() (fmt.Stringer, error) {
			f6, err := suite.Fig6()
			if err != nil {
				return nil, err
			}
			return suite.ExtYield(f6), nil
		}},
	}

	// flushMetrics writes the -metrics-out snapshot and the -trace-out trace
	// file; it runs on the normal exit path AND on every fatal/interrupt
	// path, so an interrupted campaign never drops its observability data.
	flushMetrics := func() {
		if rec != nil {
			runSpan.End()
			runSpan = nil // End appends; never twice
			if err := rec.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "vsrepro: trace:", err)
			} else {
				fmt.Printf("trace written to %s (inspect with 'vstrace summarize %s' or load in Perfetto)\n", *traceOut, *traceOut)
			}
			rec = nil
		}
		if *metricsOut == "" {
			return
		}
		data, err := reg.Snapshot().MarshalIndentJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsrepro: metrics snapshot:", err)
			return
		}
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vsrepro: metrics snapshot:", err)
			return
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}

	want := strings.ToLower(*exp)
	var selected []runner
	for _, r := range runners {
		switch want {
		case "all":
			if r.ext {
				continue
			}
		case "ext":
			if !r.ext {
				continue
			}
		default:
			if want != r.id {
				continue
			}
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	// Exit summary on interruption: one line per selected experiment —
	// completed (with its wall time), interrupted mid-run, or skipped
	// (never started) — so an operator sees exactly where the campaign
	// stood and what a -resume run still owes.
	elapsed := make(map[string]time.Duration, len(selected))
	interruptSummary := func(at string) {
		fmt.Fprintf(os.Stderr, "vsrepro: campaign interrupted; per-experiment status:\n")
		for _, r := range selected {
			switch {
			case r.id == at:
				fmt.Fprintf(os.Stderr, "  %-12s interrupted\n", r.id)
			default:
				if d, ok := elapsed[r.id]; ok {
					fmt.Fprintf(os.Stderr, "  %-12s completed (%s)\n", r.id, d.Round(time.Millisecond))
				} else {
					fmt.Fprintf(os.Stderr, "  %-12s skipped\n", r.id)
				}
			}
		}
	}

	for _, r := range selected {
		t := time.Now()
		var expSpan *obstrace.Span
		if rec != nil {
			// Each experiment gets its own span; Monte Carlo runs started
			// while it is current parent to it (suite.Cfg is what runPooledMC
			// reads its trace anchors from).
			expSpan = rec.Start(r.id, obstrace.CatExperiment, runSpan.ID())
			suite.Cfg.TraceParent = expSpan.ID()
		}
		res, err := r.run()
		expSpan.End()
		if err != nil {
			if lifecycle.IsCancellation(err) {
				fmt.Fprintf(os.Stderr, "vsrepro: %s interrupted: %v\n", r.id, err)
				interruptSummary(r.id)
				if *checkpoint != "" {
					fmt.Fprintf(os.Stderr, "vsrepro: completed samples are preserved in %s; re-run with -resume to finish\n", *checkpoint)
				}
				flushMetrics()
				os.Exit(130)
			}
			flushMetrics()
			fatal(fmt.Errorf("%s: %w", r.id, err))
		}
		elapsed[r.id] = time.Since(t)
		fmt.Printf("==== %s (%s) ====\n%s\n", r.id, elapsed[r.id].Round(time.Millisecond), res)
		if *csvDir != "" {
			if cw, ok := res.(interface{ WriteCSV(string) error }); ok {
				if err := cw.WriteCSV(*csvDir); err != nil {
					flushMetrics()
					fatal(fmt.Errorf("%s: csv: %w", r.id, err))
				}
			}
		}
	}

	flushMetrics()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsrepro:", err)
	os.Exit(1)
}
