// Command vsfit runs the nominal Virtual Source parameter extraction
// against the golden 40-nm reference (the paper's Fig. 1 workflow) and
// prints the fitted card, fit quality, and optionally the overlay curves.
//
// Usage:
//
//	vsfit [-kind nmos|pmos] [-w 300n] [-vdd 0.9] [-curves]
package main

import (
	"flag"
	"fmt"
	"os"

	"vstat/internal/bsim"
	"vstat/internal/device"
	"vstat/internal/extract"
	"vstat/internal/spice"
	"vstat/internal/vsmodel"
)

func main() {
	kindFlag := flag.String("kind", "nmos", "device polarity: nmos or pmos")
	wFlag := flag.String("w", "300n", "drawn width")
	vdd := flag.Float64("vdd", 0.9, "supply voltage")
	curves := flag.Bool("curves", false, "print the Fig. 1 overlay curves")
	flag.Parse()

	var kind device.Kind
	switch *kindFlag {
	case "nmos":
		kind = device.NMOS
	case "pmos":
		kind = device.PMOS
	default:
		fatal(fmt.Errorf("bad -kind %q", *kindFlag))
	}
	w, err := spice.ParseValue(*wFlag)
	if err != nil {
		fatal(err)
	}

	ref := bsim.Card(kind, w)
	ds := extract.SampleDevice(&ref, *vdd)
	fit, rep, err := extract.FitVS(vsmodel.Card(kind, w), ds)
	if err != nil {
		fatal(err)
	}
	ref44 := ref.WithGeometry(w, ref.Length()+4e-9)
	if cal, err := extract.CalibrateLDelta(fit, &ref44, *vdd); err == nil {
		fit = cal
	}

	fmt.Printf("fitted %s card (W=%s, Vdd=%.2f V):\n", *kindFlag, *wFlag, *vdd)
	fmt.Printf("  VT0    = %.4f V\n", fit.VT0)
	fmt.Printf("  delta0 = %.4f V/V (LDelta = %.3g nm)\n", fit.Delta0, fit.LDelta*1e9)
	fmt.Printf("  n0     = %.3f\n", fit.N0)
	fmt.Printf("  vxo    = %.4g cm/s\n", fit.Vxo/vsmodel.CmPerS)
	fmt.Printf("  mu     = %.1f cm2/Vs\n", fit.Mu/vsmodel.Cm2PerVs)
	fmt.Printf("  Rs0    = %.1f ohm*um\n", fit.Rs0*1e6)
	fmt.Printf("  Cinv   = %.3f uF/cm2\n", fit.Cinv/vsmodel.MuFPerCm2)
	fmt.Printf("  Cof    = %.3g fF/um\n", fit.Cof*1e9)
	fmt.Printf("fit quality: RMS rel Id %.2f%%, sat point %.2f%%, subVt %.3f dec, Cgg %.2f%%\n",
		100*rep.RMSRelId, 100*rep.MaxRelIdSat, rep.RMSLogIdSub, 100*rep.RMSRelCgg)

	if *curves {
		s := extract.Fig1(&ref, &fit, *vdd)
		fmt.Printf("\nId-Vg at Vds=Vdd:\n%-8s %-12s %-12s\n", "Vg", "golden", "VS")
		for i := range s.VgGrid {
			fmt.Printf("%-8.3f %-12.4e %-12.4e\n", s.VgGrid[i], s.IdVgRef[i], s.IdVgFit[i])
		}
		for j, vg := range s.VgLevels {
			fmt.Printf("\nId-Vd at Vg=%.2f:\n%-8s %-12s %-12s\n", vg, "Vd", "golden", "VS")
			for i := range s.VdGrid {
				fmt.Printf("%-8.3f %-12.4e %-12.4e\n", s.VdGrid[i], s.IdVdRef[j][i], s.IdVdFit[j][i])
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsfit:", err)
	os.Exit(1)
}
