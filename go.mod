module vstat

go 1.22
