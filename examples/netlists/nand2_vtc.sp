NAND2 voltage transfer curve (input a swept, b high)
VDD vdd 0 DC 0.9
VA a 0 DC 0
VB b 0 DC 0.9
MPA out a vdd vdd pmos W=600n L=40n
MPB out b vdd vdd pmos W=600n L=40n
MNB out b mid 0 nmos W=300n L=40n
MNA mid a 0 0 nmos W=300n L=40n
.dc VA 0 0.9 0.0225
.end
