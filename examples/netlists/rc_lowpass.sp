RC low-pass: AC transfer (pole at ~159 kHz)
VIN in 0 DC 0
R1 in out 1k
C1 out 0 1n
.ac VIN 1k 100meg 17
.end
