Golden-model common-source stage with resistive load
VDD vdd 0 DC 0.9
VIN in 0 DC 0.45
MN out in 0 0 nmos_golden W=1u L=40n
RL vdd out 5k
.op
.end
