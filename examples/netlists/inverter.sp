VS inverter: transient switching at 0.9 V
VDD vdd 0 DC 0.9
VIN in 0 PULSE(0 0.9 20p 10p 10p 150p 400p)
MP out in vdd vdd pmos W=600n L=40n
MN out in 0 0 nmos W=300n L=40n
CL out 0 1f
.op
.tran 1p 400p
.end
