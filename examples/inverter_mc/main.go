// inverter_mc runs the full statistical flow on a fanout-of-3 inverter:
// extract the statistical VS model from the golden kit, then Monte Carlo the
// gate delay with both models and compare the distributions — a compact
// version of paper Fig. 5.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/experiments"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/spice"
	"vstat/internal/stats"
)

func main() {
	n := flag.Int("n", 300, "Monte Carlo samples per model")
	flag.Parse()

	fmt.Println("building statistical VS model (fit + BPV extraction)...")
	suite, err := experiments.NewSuite(experiments.Config{
		Seed: 42, Scale: 0.3, Vdd: 0.9,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("extracted coefficients: %s\n\n", suite.VS.AlphaN)

	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	run := func(m core.StatModel, seed int64) []float64 {
		out, err := montecarlo.Scalars(*n, seed, 0, func(idx int, rng *rand.Rand) (float64, error) {
			b := circuits.InverterFO(3, 0.9, sz, m.Statistical(rng))
			res, err := b.Ckt.Transient(spice.TranOpts{Stop: 560e-12, Step: 1.5e-12})
			if err != nil {
				return 0, err
			}
			return measure.PairDelay(res, b.In, b.Out, 0.9)
		})
		if err != nil {
			panic(err)
		}
		return out
	}

	golden := run(suite.Golden, 1)
	vs := run(suite.VS, 2)
	fmt.Printf("INV FO3 delay over %d samples:\n", *n)
	fmt.Printf("  golden: mean %.2f ps, sd %.2f ps\n", stats.Mean(golden)*1e12, stats.StdDev(golden)*1e12)
	fmt.Printf("  VS    : mean %.2f ps, sd %.2f ps\n", stats.Mean(vs)*1e12, stats.StdDev(vs)*1e12)

	// ASCII histogram of the VS distribution.
	fmt.Println("\nVS delay histogram:")
	for _, b := range stats.Histogram(vs, 12) {
		fmt.Printf("  %6.2f-%6.2f ps %s\n", b.Lo*1e12, b.Hi*1e12, bar(b.Count))
	}
}

func bar(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}
