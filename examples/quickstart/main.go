// Quickstart: evaluate the Virtual Source model, draw a statistical
// instance, and simulate an inverter — the three layers of the library in
// ~60 lines.
package main

import (
	"fmt"
	"math/rand"

	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/spice"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

func main() {
	// 1. The nominal Virtual Source model: a 40-nm NMOS card, evaluated
	// directly (paper Eqs. 2-4).
	n := vsmodel.NMOS40(1e-6) // W = 1 µm
	ion := n.Eval(0.9, 0.9, 0, 0).Id
	ioff := n.Eval(0.9, 0, 0, 0).Id
	fmt.Printf("nominal VS NMOS:  Ion = %.1f uA/um, Ioff = %.1f nA/um\n", ion*1e6, ioff*1e9)

	// 2. The statistical model: Pelgrom-scaled mismatch coefficients map
	// five independent Gaussians onto the card (paper Table I, Eq. 5).
	stat := core.DefaultStatVS()
	stat.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29) // paper Table II
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		d := stat.SampleDevice(rng, device.NMOS, 600e-9, 40e-9)
		fmt.Printf("  MC instance %d: Idsat = %.2f uA\n", i, d.Eval(0.9, 0.9, 0, 0).Id*1e6)
	}

	// 3. A circuit: inverter VTC with the built-in MNA engine.
	ckt := spice.New()
	vdd := ckt.Node("vdd")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.AddV("VDD", vdd, spice.Gnd, spice.DC(0.9))
	vin := ckt.AddV("VIN", in, spice.Gnd, spice.DC(0))
	nm := vsmodel.NMOS40(300e-9)
	pm := vsmodel.PMOS40(600e-9)
	ckt.AddMOS("MN", out, in, spice.Gnd, spice.Gnd, &nm)
	ckt.AddMOS("MP", out, in, vdd, vdd, &pm)

	fmt.Println("inverter VTC:")
	var sweep []float64
	for v := 0.0; v <= 0.91; v += 0.15 {
		sweep = append(sweep, v)
	}
	ops, err := ckt.DCSweep(vin, sweep)
	if err != nil {
		panic(err)
	}
	for i, op := range ops {
		fmt.Printf("  Vin = %.2f V -> Vout = %.3f V\n", sweep[i], op.V(out))
	}
}
