// sram_snm draws the 6T SRAM butterfly curves and Monte Carlos the static
// noise margin with the statistical Virtual Source model — the core of
// paper Fig. 9, including the slightly non-Gaussian HOLD SNM tail.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/stats"
	"vstat/internal/variation"
)

func main() {
	n := flag.Int("n", 400, "Monte Carlo samples")
	flag.Parse()

	stat := core.DefaultStatVS()
	// Paper Table II coefficients (skip re-extraction for this example).
	stat.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	stat.AlphaP = variation.FromPaperUnits(2.86, 3.66, 3.66, 781, 0.81)

	// Nominal butterfly curves.
	cell := circuits.NewSRAMCell(0.9, circuits.DefaultSRAMSizing(), stat.Nominal())
	for _, mode := range []struct {
		name string
		read bool
	}{{"HOLD", false}, {"READ", true}} {
		l, r, err := cell.Butterfly(mode.read, 41)
		if err != nil {
			panic(err)
		}
		res, err := measure.SNM(l, r)
		if err != nil {
			panic(err)
		}
		fmt.Printf("nominal %s SNM = %.1f mV (lobes %.1f / %.1f)\n",
			mode.name, res.SNM*1e3, res.Upper*1e3, res.Lower*1e3)
	}

	// Monte Carlo HOLD SNM.
	snms, err := montecarlo.Scalars(*n, 7, 0, func(idx int, rng *rand.Rand) (float64, error) {
		c := circuits.NewSRAMCell(0.9, circuits.DefaultSRAMSizing(), stat.Statistical(rng))
		l, r, err := c.Butterfly(false, 41)
		if err != nil {
			return 0, err
		}
		res, err := measure.SNM(l, r)
		return res.SNM, err
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nHOLD SNM over %d Monte Carlo cells: mean %.1f mV, sd %.1f mV\n",
		*n, stats.Mean(snms)*1e3, stats.StdDev(snms)*1e3)
	fmt.Printf("skewness %.3f, QQ nonlinearity %.4f (slightly non-Gaussian, Fig. 9f)\n",
		stats.Skewness(snms), stats.QQNonlinearity(snms))
	q := stats.Quantiles(snms, []float64{0.001, 0.01, 0.5, 0.99, 0.999})
	fmt.Printf("quantiles: 0.1%%=%.1f 1%%=%.1f 50%%=%.1f 99%%=%.1f 99.9%%=%.1f mV\n",
		q[0]*1e3, q[1]*1e3, q[2]*1e3, q[3]*1e3, q[4]*1e3)
}
