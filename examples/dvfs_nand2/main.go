// dvfs_nand2 demonstrates the paper's low-power claim (Fig. 7): with purely
// Gaussian VS parameter variations, NAND2 gate-delay distributions stay
// Gaussian at nominal Vdd but turn visibly non-Gaussian under dynamic
// voltage scaling — and no re-extraction is needed, because the statistical
// VS model is bias-independent.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/spice"
	"vstat/internal/stats"
	"vstat/internal/variation"
)

func main() {
	n := flag.Int("n", 300, "Monte Carlo samples per supply point")
	flag.Parse()

	stat := core.DefaultStatVS()
	stat.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	stat.AlphaP = variation.FromPaperUnits(2.86, 3.66, 3.66, 781, 0.81)

	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	fmt.Printf("%8s %12s %10s %10s %12s %12s\n",
		"Vdd (V)", "mean (ps)", "sd (ps)", "sd/mean", "skewness", "QQ nonlin")
	for _, vdd := range []float64{0.9, 0.7, 0.55} {
		delays, err := montecarlo.Scalars(*n, int64(vdd*1000), 0,
			func(idx int, rng *rand.Rand) (float64, error) {
				b := circuits.NAND2FO(3, vdd, sz, stat.Statistical(rng))
				res, err := b.Ckt.Transient(spice.TranOpts{Stop: 560e-12, Step: 1.5e-12})
				if err != nil {
					return 0, err
				}
				return measure.PairDelay(res, b.In, b.Out, vdd)
			})
		if err != nil {
			panic(err)
		}
		mean := stats.Mean(delays)
		sd := stats.StdDev(delays)
		fmt.Printf("%8.2f %12.2f %10.2f %10.3f %12.3f %12.4f\n",
			vdd, mean*1e12, sd*1e12, sd/mean, stats.Skewness(delays), stats.QQNonlinearity(delays))
	}
	fmt.Println("\nThe rising skewness/QQ columns show the non-Gaussian onset at low Vdd")
	fmt.Println("even though every sampled parameter is an independent Gaussian (paper Fig. 7).")
}
